//! Command implementations for the `txdb` binary.
//!
//! Everything takes a `Write` sink so the integration tests can drive the
//! full command surface without spawning processes.

use std::io::Write;
use std::path::PathBuf;

use txdb_base::{Error, Interval, Result, Timestamp, VersionId};
use txdb_client::json::Json;
use txdb_client::{Client, ClientError};
use txdb_core::{Database, DbOptions};
use txdb_query::{strip_explain_prefix, QueryExt};
use txdb_server::{DrainReason, Server, ServerConfig};
use txdb_storage::repo::VersionKind;

/// Parsed global options + subcommand tail.
struct Cli {
    db_dir: Option<PathBuf>,
    snapshot_every: Option<u32>,
    command: Vec<String>,
}

fn usage() -> String {
    "usage: txdb [--db DIR] [--snapshot-every N] <command>\n\
     commands:\n\
       put <name> <file.xml> [--at TIME]    store a new version\n\
       delete <name> [--at TIME]            delete (tombstone)\n\
       ls                                   list documents\n\
       log <name>                           version history\n\
       cat <name> [--at TIME|--version N] [--pretty]\n\
       diff <name> <t1> <t2>                edit script between snapshots\n\
       history <name> [--from T] [--to T]   reconstruct versions in a range\n\
       query [--explain] <QUERY>            run a temporal query; --explain\n\
                                            (or an EXPLAIN ANALYZE prefix)\n\
                                            prints the timed plan tree\n\
       vacuum <name> --before TIME          purge history before a horizon\n\
       fsck [--repair-tail] [--reclaim]     verify checksums, records and\n\
                                            version chains; optionally\n\
                                            truncate a torn WAL tail and\n\
                                            free leaked (salvaged) pages\n\
       stats                                space and index statistics\n\
       metrics [--json]                     engine metrics registry dump\n\
       serve [PATH] [--addr HOST:PORT]      serve the database over TCP\n\
             [--max-conns N]                (newline-delimited JSON; see\n\
             [--max-request-bytes N]        docs/protocol.md); drains on\n\
             [--no-wal-sync]                stdin EOF or wire SHUTDOWN;\n\
             [--slow-ms N] [--idle-ms N]    --slow-ms logs slow queries,\n\
                                            --idle-ms times out idle sessions\n\
       traces --connect HOST:PORT           recent request traces from a\n\
              [--limit N] [--slow]          server (--slow: slow-query log)\n\
       top --connect HOST:PORT              live dashboard: rates and\n\
           [--interval-ms N] [--ticks N]    percentiles from METRICS deltas\n\
       shell [--connect HOST:PORT]          interactive query shell, local\n\
                                            or against a running server"
        .to_string()
}

fn parse_cli(args: &[String]) -> Result<Cli> {
    let mut db_dir = None;
    let mut snapshot_every = None;
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--db" => {
                i += 1;
                db_dir = Some(PathBuf::from(
                    args.get(i)
                        .ok_or_else(|| Error::QueryInvalid("--db needs a directory".into()))?,
                ));
            }
            "--snapshot-every" => {
                i += 1;
                snapshot_every =
                    Some(args.get(i).and_then(|v| v.parse().ok()).ok_or_else(|| {
                        Error::QueryInvalid("--snapshot-every needs a number".into())
                    })?);
            }
            "--help" | "-h" => {
                return Err(Error::QueryInvalid(usage()));
            }
            _ => rest.push(args[i].clone()),
        }
        i += 1;
    }
    Ok(Cli { db_dir, snapshot_every, command: rest })
}

/// Extracts `--flag VALUE` from a command tail, returning the remainder.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

fn now() -> Timestamp {
    Timestamp::from_micros(
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0),
    )
}

fn parse_time_arg(v: Option<String>) -> Result<Timestamp> {
    match v {
        Some(s) => Timestamp::parse(&s),
        None => Ok(now()),
    }
}

/// Entry point shared by `main` and the tests.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<()> {
    let cli = parse_cli(args)?;
    if cli.command.is_empty() {
        return Err(Error::QueryInvalid(usage()));
    }
    // `serve` opens the database with its own options (WAL sync on, no
    // per-command checkpoints) while `shell --connect`, `traces` and
    // `top` open none at all, so all are dispatched before the common
    // open below.
    match cli.command[0].as_str() {
        "serve" => return serve(&cli, out),
        "traces" => return traces_cmd(&cli.command[1..], out),
        "top" => return top_cmd(&cli.command[1..], out),
        "shell" => {
            let mut tail = cli.command[1..].to_vec();
            if let Some(addr) = take_flag(&mut tail, "--connect") {
                if !tail.is_empty() {
                    return Err(Error::QueryInvalid(
                        "usage: txdb shell [--connect HOST:PORT]".into(),
                    ));
                }
                return connect_shell(&addr, out);
            }
        }
        _ => {}
    }
    let mut opts = DbOptions::new();
    if let Some(dir) = &cli.db_dir {
        opts = opts.path(dir.clone());
    }
    if let Some(k) = cli.snapshot_every {
        opts = opts.snapshot_every(k);
    }
    let db = opts.open()?;
    let report = db.recovery_report();
    if report.replayed > 0 {
        writeln!(out, "(recovered {} operations from the WAL)", report.replayed)?;
    }
    if let Some(reason) = &report.salvage {
        writeln!(out, "WARNING: opened read-only (salvage mode): {reason}")?;
        if report.unindexed_chains > 0 {
            writeln!(
                out,
                "WARNING: {} document chain(s) could not be indexed",
                report.unindexed_chains
            )?;
        }
    }
    let mut tail: Vec<String> = cli.command[1..].to_vec();
    match cli.command[0].as_str() {
        "put" => {
            let at = parse_time_arg(take_flag(&mut tail, "--at"))?;
            let [name, file] = two(&tail, "put <name> <file.xml>")?;
            let xml = std::fs::read_to_string(file)?;
            let r = db.put(name, &xml, at)?;
            db.checkpoint()?;
            if r.changed {
                writeln!(out, "{}: stored version {} @ {}", name, r.version.0, r.ts)?;
            } else {
                writeln!(out, "{name}: unchanged, no version stored")?;
            }
        }
        "delete" => {
            let at = parse_time_arg(take_flag(&mut tail, "--at"))?;
            let [name] = one(&tail, "delete <name>")?;
            match db.delete(name, at)? {
                Some(d) => {
                    db.checkpoint()?;
                    writeln!(out, "{name}: deleted @ {}", d.ts)?;
                }
                None => writeln!(out, "{name}: not present (nothing deleted)")?,
            }
        }
        "ls" => {
            for (doc, name) in db.store().list()? {
                let entries = db.store().versions(doc)?;
                let state = if db.store().is_deleted(doc)? { "deleted" } else { "live" };
                writeln!(
                    out,
                    "{name}  ({} version{}, {state})",
                    entries.len(),
                    if entries.len() == 1 { "" } else { "s" }
                )?;
            }
        }
        "log" => {
            let [name] = one(&tail, "log <name>")?;
            let doc =
                db.store().doc_id(name)?.ok_or_else(|| Error::NoSuchDocument(name.to_string()))?;
            for e in db.store().versions(doc)? {
                let kind = match e.kind {
                    VersionKind::Content => {
                        if e.snapshot_rid.is_some() {
                            "content+snapshot"
                        } else if e.delta_rid.is_some() {
                            "content"
                        } else {
                            "base"
                        }
                    }
                    VersionKind::Tombstone => "DELETED",
                    VersionKind::Purged => "purged",
                };
                writeln!(out, "v{:<4} {}  {kind}", e.version.0, e.ts)?;
            }
        }
        "cat" => {
            let at = take_flag(&mut tail, "--at");
            let version = take_flag(&mut tail, "--version");
            let pretty = take_switch(&mut tail, "--pretty");
            let [name] = one(&tail, "cat <name>")?;
            let doc =
                db.store().doc_id(name)?.ok_or_else(|| Error::NoSuchDocument(name.to_string()))?;
            let tree = match (at, version) {
                (_, Some(v)) => {
                    let v: u32 = v
                        .parse()
                        .map_err(|_| Error::QueryInvalid("--version needs a number".into()))?;
                    db.store().version_tree(doc, VersionId(v))?
                }
                (Some(t), None) => db.reconstruct_doc_at(doc, Timestamp::parse(&t)?)?,
                (None, None) => db.store().current_tree(doc)?,
            };
            let text = if pretty {
                txdb_xml::serialize::to_string_pretty(&tree)
            } else {
                txdb_xml::serialize::to_string(&tree) + "\n"
            };
            write!(out, "{text}")?;
        }
        "diff" => {
            let [name, t1, t2] = three(&tail, "diff <name> <t1> <t2>")?;
            let doc =
                db.store().doc_id(name)?.ok_or_else(|| Error::NoSuchDocument(name.to_string()))?;
            let (t1, t2) = (Timestamp::parse(t1)?, Timestamp::parse(t2)?);
            let old = db.reconstruct_doc_at(doc, t1)?;
            let new = db.reconstruct_doc_at(doc, t2)?;
            let script = db.diff_trees_xml(&old, new, t1, t2)?;
            writeln!(out, "{}", txdb_xml::serialize::to_string_pretty(&script))?;
        }
        "history" => {
            let from = take_flag(&mut tail, "--from")
                .map(|t| Timestamp::parse(&t))
                .transpose()?
                .unwrap_or(Timestamp::ZERO);
            let to = take_flag(&mut tail, "--to")
                .map(|t| Timestamp::parse(&t))
                .transpose()?
                .unwrap_or(Timestamp::FOREVER);
            let [name] = one(&tail, "history <name> [--from T] [--to T]")?;
            let doc =
                db.store().doc_id(name)?.ok_or_else(|| Error::NoSuchDocument(name.to_string()))?;
            let history = db.doc_history(doc, Interval::new(from, to))?;
            if history.is_empty() {
                writeln!(out, "{name}: no versions valid in [{from}, {to})")?;
            }
            for dv in history {
                writeln!(
                    out,
                    "v{} @ {}:\n{}",
                    dv.version.0,
                    dv.ts,
                    txdb_xml::serialize::to_string_pretty(&dv.tree)
                )?;
            }
        }
        "query" => {
            let explain = take_switch(&mut tail, "--explain");
            let [q] = one(&tail, "query [--explain] <QUERY>")?;
            run_query_explain(&db, q, explain, out)?;
        }
        "vacuum" => {
            let before = parse_time_arg(take_flag(&mut tail, "--before"))?;
            let [name] = one(&tail, "vacuum <name> --before TIME")?;
            match db.vacuum(name, before)? {
                Some(v) => {
                    db.checkpoint()?;
                    writeln!(
                        out,
                        "{name}: purged {} version{}, freed {} bytes",
                        v.purged_versions,
                        if v.purged_versions == 1 { "" } else { "s" },
                        v.freed_bytes
                    )?;
                }
                None => writeln!(out, "{name}: not present")?,
            }
        }
        "fsck" => {
            let repair = take_switch(&mut tail, "--repair-tail");
            let reclaim = take_switch(&mut tail, "--reclaim");
            if !tail.is_empty() {
                return Err(Error::QueryInvalid(
                    "usage: txdb fsck [--repair-tail] [--reclaim]".into(),
                ));
            }
            let r = db.store().fsck();
            writeln!(out, "{r}")?;
            if reclaim {
                let freed = db.store().reclaim_leaked_pages()?;
                if freed.is_empty() {
                    writeln!(out, "reclaimed: nothing to do (no leaked pages)")?;
                } else {
                    writeln!(
                        out,
                        "reclaimed: {} leaked page(s) returned to the free list",
                        freed.len()
                    )?;
                }
            }
            if repair {
                let mut repaired = false;
                if r.torn_bytes > 0 {
                    let removed = db.store().repair_wal_tail()?;
                    writeln!(out, "repaired: {removed} torn byte(s) truncated from the WAL tail")?;
                    repaired = true;
                }
                if db.store().retire_journal()? {
                    writeln!(out, "repaired: checkpoint journal retired")?;
                    repaired = true;
                }
                if !repaired {
                    writeln!(out, "repaired: nothing to do (no torn tail, no journal residue)")?;
                }
            }
            if !r.is_clean() {
                return Err(Error::Corrupt(format!(
                    "fsck found {} bad page(s) and {} error(s)",
                    r.bad_pages.len(),
                    r.errors.len()
                )));
            }
        }
        "stats" => {
            let s = db.store().space_stats()?;
            let fti = db.indexes().fti();
            writeln!(out, "documents:        {}", db.store().list()?.len())?;
            writeln!(out, "pages:            {}", s.pages)?;
            writeln!(out, "current bytes:    {}", s.current_bytes)?;
            writeln!(out, "delta bytes:      {}", s.delta_bytes)?;
            writeln!(out, "snapshot bytes:   {}", s.snapshot_bytes)?;
            writeln!(out, "metadata bytes:   {}", s.meta_bytes)?;
            writeln!(out, "fti postings:     {}", fti.posting_count())?;
            writeln!(out, "fti tokens:       {}", fti.token_count())?;
            match db.store().index_checkpoint_info() {
                Ok(Some(i)) => writeln!(
                    out,
                    "index checkpoint: generation {}, {} bytes in {} page(s)",
                    i.generation, i.bytes, i.pages
                )?,
                Ok(None) => writeln!(out, "index checkpoint: none")?,
                Err(e) => writeln!(out, "index checkpoint: unreadable ({e})")?,
            }
            if let Some(eidx) = db.indexes().eid_index() {
                writeln!(out, "eid index:        {} elements", eidx.len()?)?;
            }
            let (hits, misses, _, evictions, invalidations) = db.store().vcache_stats().snapshot();
            writeln!(out, "vcache entries:   {}", db.store().vcache().len())?;
            writeln!(out, "vcache resident:  {} bytes", db.store().vcache().resident_bytes())?;
            writeln!(out, "vcache hits:      {hits}")?;
            writeln!(out, "vcache misses:    {misses}")?;
            writeln!(out, "vcache evicted:   {evictions}")?;
            writeln!(out, "vcache dropped:   {invalidations}")?;
            // Recovery observability: how this (and, within the registry's
            // lifetime, any) open replayed history.
            let m = db.metrics().snapshot();
            writeln!(
                out,
                "recovery:         {} full-replay fallback(s), {} stale-cover replay(s), \
                 {} salvage open(s)",
                m.counter("recovery.index_fallback").unwrap_or(0),
                m.counter("recovery.stale_cover_replays").unwrap_or(0),
                m.counter("recovery.salvage_opens").unwrap_or(0),
            )?;
        }
        "metrics" => {
            let json = take_switch(&mut tail, "--json");
            if !tail.is_empty() {
                return Err(Error::QueryInvalid("usage: txdb metrics [--json]".into()));
            }
            db.store().update_derived_metrics();
            let snap = db.metrics().snapshot();
            if json {
                writeln!(out, "{}", snap.to_json())?;
            } else {
                write!(out, "{}", snap.to_text())?;
            }
        }
        "shell" => {
            shell(&db, out)?;
        }
        other => {
            return Err(Error::QueryInvalid(format!("unknown command `{other}`\n{}", usage())));
        }
    }
    Ok(())
}

/// `txdb serve [PATH] [--addr A] [--max-conns N] [--max-request-bytes N]
/// [--no-wal-sync] [--slow-ms N] [--idle-ms N]` — run the TCP front end
/// until a drain is requested.
///
/// The database opens with WAL sync **on** (each wire commit is durable;
/// concurrent committers share fsyncs through group commit) and no
/// per-command checkpoints — the WAL absorbs the write stream and is
/// checkpointed once, at drain. Draining is triggered by stdin reaching
/// EOF (the supervisor closed our input) or a client `SHUTDOWN`.
fn serve(cli: &Cli, out: &mut dyn Write) -> Result<()> {
    let mut tail: Vec<String> = cli.command[1..].to_vec();
    let addr = take_flag(&mut tail, "--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let max_conns = match take_flag(&mut tail, "--max-conns") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| Error::QueryInvalid("--max-conns needs a number".into()))?,
        None => ServerConfig::default().max_conns,
    };
    let max_request_bytes = match take_flag(&mut tail, "--max-request-bytes") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| Error::QueryInvalid("--max-request-bytes needs a number".into()))?,
        None => ServerConfig::default().max_request_bytes,
    };
    let wal_sync = !take_switch(&mut tail, "--no-wal-sync");
    // `--slow-ms 0` is meaningful: it logs *every* query (threshold 0µs),
    // which is how the check script exercises the slow log; omitting the
    // flag disables the log and its metering cost entirely.
    let slow_us = match take_flag(&mut tail, "--slow-ms") {
        Some(v) => Some(
            v.parse::<u64>().map_err(|_| Error::QueryInvalid("--slow-ms needs a number".into()))?
                * 1000,
        ),
        None => None,
    };
    let idle_timeout = match take_flag(&mut tail, "--idle-ms") {
        Some(v) => {
            let ms = v
                .parse::<u64>()
                .map_err(|_| Error::QueryInvalid("--idle-ms needs a number".into()))?;
            (ms > 0).then(|| std::time::Duration::from_millis(ms))
        }
        None => None,
    };
    let path = match tail.len() {
        0 => cli.db_dir.clone(),
        1 => Some(PathBuf::from(tail.remove(0))),
        _ => return Err(Error::QueryInvalid("usage: txdb serve [PATH] [--addr …]".into())),
    };
    let mut opts = DbOptions::new().wal_sync(wal_sync);
    if let Some(dir) = path {
        opts = opts.path(dir);
    }
    if let Some(k) = cli.snapshot_every {
        opts = opts.snapshot_every(k);
    }
    let db = std::sync::Arc::new(opts.open()?);
    let report = db.recovery_report();
    if report.replayed > 0 {
        writeln!(out, "(recovered {} operations from the WAL)", report.replayed)?;
    }
    if let Some(reason) = &report.salvage {
        writeln!(out, "WARNING: serving read-only (salvage mode): {reason}")?;
    }
    let cfg = ServerConfig { addr, max_conns, max_request_bytes, slow_us, idle_timeout };
    let server = Server::start(std::sync::Arc::clone(&db), cfg)?;
    writeln!(out, "listening on {}", server.addr())?;
    out.flush()?;
    // Supervisor protocol: when our stdin closes, drain. (No signal
    // handling — the standard library has none and the workspace links
    // no libc bindings; closing stdin or a wire SHUTDOWN are the two
    // drain triggers.)
    let host_drain = server.drain_requester();
    std::thread::spawn(move || {
        let mut sink = Vec::new();
        let mut stdin = std::io::stdin();
        let _ = std::io::Read::read_to_end(&mut stdin, &mut sink);
        let _ = host_drain.send(DrainReason::HostRequest);
    });
    let reason = server.wait_drain_requested();
    writeln!(
        out,
        "draining ({})",
        match reason {
            DrainReason::ClientRequest => "client SHUTDOWN",
            DrainReason::HostRequest => "stdin closed",
        }
    )?;
    out.flush()?;
    let drained = server.shutdown()?;
    writeln!(
        out,
        "drained: {} session(s) open at shutdown, {} served in total",
        drained.sessions_drained, drained.sessions_total
    )?;
    Ok(())
}

/// Maps a wire-client failure into the CLI's error type.
fn wire_err(e: ClientError) -> Error {
    match e {
        ClientError::Io(e) => Error::Io(e),
        other => Error::QueryInvalid(format!("server error: {other}")),
    }
}

/// `txdb traces --connect HOST:PORT [--limit N] [--slow]` — fetch and
/// render the server's trace ring (or, with `--slow`, its slow-query
/// log), newest first.
fn traces_cmd(tail: &[String], out: &mut dyn Write) -> Result<()> {
    const USAGE: &str = "usage: txdb traces --connect HOST:PORT [--limit N] [--slow]";
    let mut tail = tail.to_vec();
    let addr =
        take_flag(&mut tail, "--connect").ok_or_else(|| Error::QueryInvalid(USAGE.into()))?;
    let limit = match take_flag(&mut tail, "--limit") {
        Some(v) => Some(
            v.parse::<u64>().map_err(|_| Error::QueryInvalid("--limit needs a number".into()))?,
        ),
        None => None,
    };
    let slow = take_switch(&mut tail, "--slow");
    if !tail.is_empty() {
        return Err(Error::QueryInvalid(USAGE.into()));
    }
    let mut client = Client::connect(&*addr).map_err(Error::Io)?;
    if slow {
        let v = client.slowlog(limit).map_err(wire_err)?;
        render_slowlog(&v, out)
    } else {
        let v = client.traces(limit).map_err(wire_err)?;
        render_traces(&v, out)
    }
}

/// Renders a `TRACES` response as indented span trees, mirroring
/// `TraceTree::render` on the server side.
fn render_traces(v: &Json, out: &mut dyn Write) -> Result<()> {
    let traces = v.get("traces").and_then(Json::as_arr).unwrap_or(&[]);
    if traces.is_empty() {
        writeln!(out, "(no traces recorded — send requests with \"trace\":true)")?;
        return Ok(());
    }
    for entry in traces {
        let tree = match entry.get("trace") {
            Some(t) => t,
            None => continue,
        };
        let id = tree.get("trace_id").and_then(Json::as_u64).unwrap_or(0);
        write!(out, "trace {id}")?;
        if let Some(Json::Obj(fields)) = tree.get("fields") {
            for (k, val) in fields {
                write!(out, " {k}={}", render_scalar(val))?;
            }
        }
        if let Some(d) = tree.get("dropped").and_then(Json::as_u64) {
            write!(out, " dropped={d}")?;
        }
        writeln!(out)?;
        for span in tree.get("spans").and_then(Json::as_arr).unwrap_or(&[]) {
            render_trace_span(span, 1, out)?;
        }
    }
    Ok(())
}

/// One span line (`name  NNNµs [fields]`) plus its children, indented.
fn render_trace_span(span: &Json, depth: usize, out: &mut dyn Write) -> Result<()> {
    let name = span.get("name").and_then(Json::as_str).unwrap_or("?");
    let us = span.get("us").and_then(Json::as_u64).unwrap_or(0);
    write!(out, "{}{name}  {us}µs", "  ".repeat(depth))?;
    if let Some(Json::Obj(fields)) = span.get("fields") {
        for (k, val) in fields {
            write!(out, " {k}={}", render_scalar(val))?;
        }
    }
    writeln!(out)?;
    for c in span.get("children").and_then(Json::as_arr).unwrap_or(&[]) {
        render_trace_span(c, depth + 1, out)?;
    }
    Ok(())
}

fn render_scalar(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

/// Renders a `SLOWLOG` response: one header line per entry followed by
/// the query text and its indented `EXPLAIN ANALYZE` tree.
fn render_slowlog(v: &Json, out: &mut dyn Write) -> Result<()> {
    match v.get("slow_us").and_then(Json::as_u64) {
        Some(us) => writeln!(out, "slow-query log (threshold {us}µs):")?,
        None => writeln!(out, "slow-query log (disabled — start the server with --slow-ms):")?,
    }
    let entries = v.get("entries").and_then(Json::as_arr).unwrap_or(&[]);
    if entries.is_empty() {
        writeln!(out, "(empty)")?;
        return Ok(());
    }
    for e in entries {
        let us = e.get("us").and_then(Json::as_u64).unwrap_or(0);
        write!(
            out,
            "-- {us}µs  session={} rows={} scanned={} reconstructions={}",
            e.get("session").and_then(Json::as_u64).unwrap_or(0),
            e.get("rows").and_then(Json::as_u64).unwrap_or(0),
            e.get("rows_scanned").and_then(Json::as_u64).unwrap_or(0),
            e.get("reconstructions").and_then(Json::as_u64).unwrap_or(0),
        )?;
        if let Some(t) = e.get("trace_id").and_then(Json::as_u64) {
            write!(out, " trace={t}")?;
        }
        writeln!(out)?;
        writeln!(out, "   {}", e.get("q").and_then(Json::as_str).unwrap_or(""))?;
        for line in e.get("explain").and_then(Json::as_str).unwrap_or("").lines() {
            writeln!(out, "   {line}")?;
        }
    }
    Ok(())
}

/// `txdb top --connect HOST:PORT [--interval-ms N] [--ticks N]` — the
/// live dashboard: polls `METRICS` with the `since` cursor and prints,
/// per window, request rates plus per-command latency (window mean,
/// cumulative p50/p95/p99). `--ticks N` stops after N windows (0, the
/// default, polls until interrupted or the server goes away).
fn top_cmd(tail: &[String], out: &mut dyn Write) -> Result<()> {
    const USAGE: &str = "usage: txdb top --connect HOST:PORT [--interval-ms N] [--ticks N]";
    let mut tail = tail.to_vec();
    let addr =
        take_flag(&mut tail, "--connect").ok_or_else(|| Error::QueryInvalid(USAGE.into()))?;
    let interval_ms = match take_flag(&mut tail, "--interval-ms") {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| Error::QueryInvalid("--interval-ms needs a number".into()))?
            .max(10),
        None => 1000,
    };
    let ticks = match take_flag(&mut tail, "--ticks") {
        Some(v) => {
            v.parse::<u64>().map_err(|_| Error::QueryInvalid("--ticks needs a number".into()))?
        }
        None => 0,
    };
    if !tail.is_empty() {
        return Err(Error::QueryInvalid(USAGE.into()));
    }
    let mut client = Client::connect(&*addr).map_err(Error::Io)?;
    writeln!(out, "txdb top — {addr}, {interval_ms}ms windows")?;
    out.flush()?;
    let first = client.metrics_since(None).map_err(wire_err)?;
    let mut cursor = first.get("cursor").and_then(Json::as_u64);
    let mut tick = 0u64;
    loop {
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        let v = client.metrics_since(cursor).map_err(wire_err)?;
        cursor = v.get("cursor").and_then(Json::as_u64);
        render_top_window(&v, out)?;
        out.flush()?;
        tick += 1;
        if ticks > 0 && tick >= ticks {
            break;
        }
    }
    Ok(())
}

/// One dashboard window from a `METRICS` delta response: gauges, change
/// counters, and a per-command latency table joining the window's
/// histogram deltas (rate, window mean) with the cumulative percentiles.
fn render_top_window(v: &Json, out: &mut dyn Write) -> Result<()> {
    let window_us = v.get("window_us").and_then(Json::as_u64).unwrap_or(0).max(1);
    let secs = window_us as f64 / 1e6;
    let delta = v.get("delta");
    let sessions = delta
        .and_then(|d| d.get("gauges"))
        .and_then(|g| g.get("server.active_sessions"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let requests = delta
        .and_then(|d| d.get("counters"))
        .and_then(|c| c.get("server.requests"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    writeln!(out, "── window {secs:.2}s  sessions {sessions}  requests {requests}")?;
    // Per-command table: every `server.cmd.*_us` histogram that moved
    // this window, rate and mean from the delta, percentiles cumulative.
    let hists = v.get("metrics").and_then(|m| m.get("histograms"));
    if let Some(Json::Obj(moved)) = delta.and_then(|d| d.get("histograms")) {
        let mut wrote_header = false;
        for (name, d) in moved {
            let cmd = match name.strip_prefix("server.cmd.").and_then(|s| s.strip_suffix("_us")) {
                Some(c) => c,
                None => continue,
            };
            let dc = d.get("count").and_then(Json::as_u64).unwrap_or(0);
            let ds = d.get("sum").and_then(Json::as_u64).unwrap_or(0);
            if dc == 0 {
                continue;
            }
            if !wrote_header {
                writeln!(
                    out,
                    "{:<10} {:>9} {:>10} {:>8} {:>8} {:>8}",
                    "cmd", "rate/s", "mean_us", "p50", "p95", "p99"
                )?;
                wrote_header = true;
            }
            let cum = hists.and_then(|h| h.get(name));
            let pct = |p: &str| {
                cum.and_then(|c| c.get(p)).and_then(Json::as_u64).unwrap_or(0).to_string()
            };
            writeln!(
                out,
                "{:<10} {:>9.1} {:>10.1} {:>8} {:>8} {:>8}",
                cmd,
                dc as f64 / secs,
                ds as f64 / dc as f64,
                pct("p50"),
                pct("p95"),
                pct("p99"),
            )?;
        }
        if !wrote_header {
            writeln!(out, "(idle — no commands this window)")?;
        }
    }
    // Noteworthy change counters (slow queries, rejections, timeouts).
    if let Some(Json::Obj(counters)) = delta.and_then(|d| d.get("counters")) {
        let mut noted = Vec::new();
        for key in ["server.slow_queries", "server.rejected_busy", "server.idle_timeouts"] {
            if let Some(n) = counters.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.as_u64()) {
                if n > 0 {
                    noted.push(format!("{} +{n}", key.trim_start_matches("server.")));
                }
            }
        }
        if !noted.is_empty() {
            writeln!(out, "{}", noted.join("  "))?;
        }
    }
    Ok(())
}

/// `txdb shell --connect HOST:PORT` — the interactive shell against a
/// running server instead of a locally opened database.
fn connect_shell(addr: &str, out: &mut dyn Write) -> Result<()> {
    let mut client = Client::connect(addr).map_err(Error::Io)?;
    writeln!(out, "txdb shell — connected to {addr}; .help for commands")?;
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        write!(out, "txdb> ")?;
        out.flush()?;
        line.clear();
        if stdin.read_line(&mut line)? == 0 {
            break; // EOF
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        match connect_shell_line(&mut client, input, out) {
            Ok(true) => break,
            Ok(false) => {}
            // The transport is gone: no further command can succeed.
            Err(ClientError::Io(e)) => {
                writeln!(out, "connection lost: {e}")?;
                break;
            }
            Err(e) => writeln!(out, "error: {e}")?,
        }
    }
    Ok(())
}

/// Executes one remote-shell line; returns `true` to quit.
fn connect_shell_line(
    client: &mut Client,
    input: &str,
    out: &mut dyn Write,
) -> std::result::Result<bool, ClientError> {
    let micros = |s: &str| {
        Timestamp::parse(s)
            .map(|t| t.micros())
            .map_err(|e| ClientError::Protocol(format!("bad time: {e}")))
    };
    match input {
        ".quit" | ".exit" | ".q" => return Ok(true),
        ".help" => {
            writeln!(
                out,
                ".put NAME FILE [TIME]   store FILE as a new version of NAME\n\
                 .delete NAME [TIME]     delete (tombstone)\n\
                 .pin TIME               pin a snapshot; prints the pin id\n\
                 .unpin ID               release a pin\n\
                 .stats                  server space/index statistics\n\
                 .metrics                server metrics snapshot (JSON)\n\
                 .ping                   round-trip check\n\
                 .shutdown               ask the server to drain\n\
                 .quit                   leave\n\
                 anything else           executed as a temporal query"
            )?;
        }
        ".ping" => {
            let t = std::time::Instant::now();
            client.ping()?;
            writeln!(out, "pong ({:.1} ms)", t.elapsed().as_secs_f64() * 1e3)?;
        }
        ".stats" => writeln!(out, "{}", client.stats()?)?,
        ".metrics" => writeln!(out, "{}", client.metrics()?)?,
        ".shutdown" => {
            client.shutdown_server()?;
            writeln!(out, "server draining")?;
            return Ok(true);
        }
        _ if input.starts_with(".put ") => {
            let args: Vec<&str> = input[5..].split_whitespace().collect();
            let (name, file, at) = match args.as_slice() {
                [n, f] => (n, f, None),
                [n, f, t] => (n, f, Some(micros(t)?)),
                _ => return Err(ClientError::Protocol("usage: .put NAME FILE [TIME]".into())),
            };
            let xml = std::fs::read_to_string(file)?;
            let r = client.put(name, &xml, at)?;
            match r.version {
                Some(v) => writeln!(out, "{name}: stored version {v}")?,
                None => writeln!(out, "{name}: unchanged, no version stored")?,
            }
        }
        _ if input.starts_with(".delete ") => {
            let args: Vec<&str> = input[8..].split_whitespace().collect();
            let (name, at) = match args.as_slice() {
                [n] => (n, None),
                [n, t] => (n, Some(micros(t)?)),
                _ => return Err(ClientError::Protocol("usage: .delete NAME [TIME]".into())),
            };
            if client.delete(name, at)? {
                writeln!(out, "{name}: deleted")?;
            } else {
                writeln!(out, "{name}: not present (nothing deleted)")?;
            }
        }
        _ if input.starts_with(".pin ") => {
            let id = client.pin(micros(input[5..].trim())?)?;
            writeln!(out, "pin {id}")?;
        }
        _ if input.starts_with(".unpin ") => {
            let id: u64 = input[7..]
                .trim()
                .parse()
                .map_err(|_| ClientError::Protocol("usage: .unpin ID".into()))?;
            client.unpin(id)?;
            writeln!(out, "released")?;
        }
        _ if input.starts_with('.') => {
            writeln!(out, "unknown dot-command; .help lists them")?;
        }
        query => {
            let start = std::time::Instant::now();
            let mut rows = 0usize;
            write!(out, "<results>")?;
            let (explain, done) = client.query_stream(query, None, |row| {
                let _ = write!(out, "<result>");
                for v in row {
                    let _ = write!(out, "{v}");
                }
                let _ = write!(out, "</result>");
                rows += 1;
            })?;
            writeln!(out, "</results>")?;
            if let Some(tree) = explain {
                write!(out, "{tree}")?;
            }
            writeln!(
                out,
                "-- {} row{} in {:.1} ms ({} reconstruction{}, {} cache hit{})",
                rows,
                if rows == 1 { "" } else { "s" },
                start.elapsed().as_secs_f64() * 1e3,
                done.reconstructions,
                if done.reconstructions == 1 { "" } else { "s" },
                done.cache_hits,
                if done.cache_hits == 1 { "" } else { "s" },
            )?;
        }
    }
    Ok(false)
}

fn run_query(db: &Database, q: &str, out: &mut dyn Write) -> Result<()> {
    run_query_explain(db, q, false, out)
}

fn run_query_explain(db: &Database, q: &str, explain: bool, out: &mut dyn Write) -> Result<()> {
    let (q, explain) = match strip_explain_prefix(q) {
        Some(rest) => (rest, true),
        None => (q, explain),
    };
    let start = std::time::Instant::now();
    let req = db.query(q).at(now());
    let (rows, stats) = if explain {
        // EXPLAIN ANALYZE drains the tree anyway (the plan annotations
        // cover the whole run), so materialise and print the tree first.
        let r = req.explain().run()?;
        if let Some(tree) = &r.explain {
            write!(out, "{}", tree.render())?;
        }
        writeln!(out, "{}", r.to_xml())?;
        (r.len(), r.stats)
    } else {
        // The plain path streams: each row is rendered as soon as the
        // operator tree produces it, never materialising the result.
        let mut stream = req.stream()?;
        write!(out, "<results>")?;
        let mut rows = 0usize;
        for row in &mut stream {
            write!(out, "<result>")?;
            for v in row? {
                write!(out, "{}", v.as_text())?;
            }
            write!(out, "</result>")?;
            rows += 1;
        }
        writeln!(out, "</results>")?;
        (rows, stream.stats())
    };
    let elapsed = start.elapsed();
    writeln!(
        out,
        "-- {} row{} in {:.1} ms ({} reconstruction{}, {} cache hit{})",
        rows,
        if rows == 1 { "" } else { "s" },
        elapsed.as_secs_f64() * 1e3,
        stats.reconstructions,
        if stats.reconstructions == 1 { "" } else { "s" },
        stats.cache_hits,
        if stats.cache_hits == 1 { "" } else { "s" },
    )?;
    Ok(())
}

/// The interactive shell: queries, plus dot-commands for inspection.
fn shell(db: &Database, out: &mut dyn Write) -> Result<()> {
    writeln!(out, "txdb shell — enter a temporal query, or .help for commands")?;
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        write!(out, "txdb> ")?;
        out.flush()?;
        line.clear();
        if stdin.read_line(&mut line)? == 0 {
            break; // EOF
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        match shell_line(db, input, out) {
            Ok(true) => break,
            Ok(false) => {}
            Err(e) => writeln!(out, "error: {e}")?,
        }
    }
    Ok(())
}

/// Executes one shell line; returns `true` to quit.
pub fn shell_line(db: &Database, input: &str, out: &mut dyn Write) -> Result<bool> {
    match input {
        ".quit" | ".exit" | ".q" => return Ok(true),
        ".help" => {
            writeln!(
                out,
                ".ls            list documents\n\
                 .log NAME      version history of NAME\n\
                 .history NAME  reconstruct every version of NAME\n\
                 .quit          leave\n\
                 anything else  executed as a temporal query"
            )?;
        }
        ".ls" => {
            for (doc, name) in db.store().list()? {
                let n = db.store().versions(doc)?.len();
                writeln!(out, "{name}  ({n} versions)")?;
            }
        }
        _ if input.starts_with(".log ") => {
            let name = input[5..].trim();
            let doc =
                db.store().doc_id(name)?.ok_or_else(|| Error::NoSuchDocument(name.to_string()))?;
            for e in db.store().versions(doc)? {
                writeln!(out, "v{:<4} {}", e.version.0, e.ts)?;
            }
        }
        _ if input.starts_with(".history ") => {
            let name = input[9..].trim();
            let doc =
                db.store().doc_id(name)?.ok_or_else(|| Error::NoSuchDocument(name.to_string()))?;
            for dv in db.doc_history(doc, Interval::ALL)? {
                writeln!(
                    out,
                    "v{} @ {}: {}",
                    dv.version.0,
                    dv.ts,
                    txdb_xml::serialize::to_string(&dv.tree)
                )?;
            }
        }
        _ if input.starts_with('.') => {
            writeln!(out, "unknown dot-command; .help lists them")?;
        }
        query => run_query(db, query, out)?,
    }
    Ok(false)
}

fn one<'a>(args: &'a [String], usage: &str) -> Result<[&'a str; 1]> {
    match args {
        [a] => Ok([a.as_str()]),
        _ => Err(Error::QueryInvalid(format!("usage: txdb {usage}"))),
    }
}

fn two<'a>(args: &'a [String], usage: &str) -> Result<[&'a str; 2]> {
    match args {
        [a, b] => Ok([a.as_str(), b.as_str()]),
        _ => Err(Error::QueryInvalid(format!("usage: txdb {usage}"))),
    }
}

fn three<'a>(args: &'a [String], usage: &str) -> Result<[&'a str; 3]> {
    match args {
        [a, b, c] => Ok([a.as_str(), b.as_str(), c.as_str()]),
        _ => Err(Error::QueryInvalid(format!("usage: txdb {usage}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("txdb-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_cmd(args: &[&str]) -> Result<String> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn put_ls_log_cat_roundtrip() {
        let dir = tmpdir("roundtrip");
        let db = dir.join("db");
        let f1 = dir.join("v1.xml");
        let f2 = dir.join("v2.xml");
        std::fs::write(&f1, "<g><r><n>Napoli</n><p>15</p></r></g>").unwrap();
        std::fs::write(&f2, "<g><r><n>Napoli</n><p>18</p></r></g>").unwrap();
        let db_s = db.to_str().unwrap();

        let out =
            run_cmd(&["--db", db_s, "put", "guide", f1.to_str().unwrap(), "--at", "01/01/2001"])
                .unwrap();
        assert!(out.contains("stored version 0"), "{out}");
        let out =
            run_cmd(&["--db", db_s, "put", "guide", f2.to_str().unwrap(), "--at", "31/01/2001"])
                .unwrap();
        assert!(out.contains("stored version 1"), "{out}");
        // Unchanged put.
        let out =
            run_cmd(&["--db", db_s, "put", "guide", f2.to_str().unwrap(), "--at", "01/02/2001"])
                .unwrap();
        assert!(out.contains("unchanged"), "{out}");

        let out = run_cmd(&["--db", db_s, "ls"]).unwrap();
        assert!(out.contains("guide  (2 versions, live)"), "{out}");

        let out = run_cmd(&["--db", db_s, "log", "guide"]).unwrap();
        assert!(out.contains("v0    2001-01-01  base"), "{out}");
        assert!(out.contains("v1    2001-01-31  content"), "{out}");

        // cat current, at a time, and by version.
        let out = run_cmd(&["--db", db_s, "cat", "guide"]).unwrap();
        assert!(out.contains("<p>18</p>"), "{out}");
        let out = run_cmd(&["--db", db_s, "cat", "guide", "--at", "15/01/2001"]).unwrap();
        assert!(out.contains("<p>15</p>"), "{out}");
        let out = run_cmd(&["--db", db_s, "cat", "guide", "--version", "0"]).unwrap();
        assert!(out.contains("<p>15</p>"), "{out}");

        // diff between the snapshots.
        let out = run_cmd(&["--db", db_s, "diff", "guide", "02/01/2001", "01/02/2001"]).unwrap();
        assert!(out.contains("<old>15</old>"), "{out}");
        assert!(out.contains("<new>18</new>"), "{out}");

        // query end-to-end.
        let out =
            run_cmd(&["--db", db_s, "query", r#"SELECT R/p FROM doc("guide")[15/01/2001]//r R"#])
                .unwrap();
        assert!(out.contains("<p>15</p>"), "{out}");
        assert!(out.contains("1 row"), "{out}");

        // stats mention stored bytes.
        let out = run_cmd(&["--db", db_s, "stats"]).unwrap();
        assert!(out.contains("documents:        1"), "{out}");
        assert!(out.contains("fti postings"), "{out}");
        assert!(out.contains("index checkpoint: generation"), "{out}");
        assert!(out.contains("vcache hits"), "{out}");

        // history range.
        let out = run_cmd(&["--db", db_s, "history", "guide", "--from", "10/01/2001"]).unwrap();
        assert!(out.contains("v1 @ 2001-01-31"), "{out}");
        assert!(out.contains("v0 @ 2001-01-01"), "{out}");
        let out = run_cmd(&["--db", db_s, "history", "guide", "--to", "01/01/1999"]).unwrap();
        assert!(out.contains("no versions valid"), "{out}");

        // delete.
        let out = run_cmd(&["--db", db_s, "delete", "guide", "--at", "01/03/2001"]).unwrap();
        assert!(out.contains("deleted @ 2001-03-01"), "{out}");
        let out = run_cmd(&["--db", db_s, "ls"]).unwrap();
        assert!(out.contains("deleted"), "{out}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shell_lines() {
        let db = Database::in_memory();
        db.put("d", "<a><b>x</b></a>", Timestamp::from_date(2001, 1, 1)).unwrap();
        db.put("d", "<a><b>y</b></a>", Timestamp::from_date(2001, 1, 2)).unwrap();
        let mut out = Vec::new();
        assert!(!shell_line(&db, ".ls", &mut out).unwrap());
        assert!(!shell_line(&db, ".log d", &mut out).unwrap());
        assert!(!shell_line(&db, ".history d", &mut out).unwrap());
        assert!(!shell_line(&db, ".help", &mut out).unwrap());
        assert!(!shell_line(&db, ".bogus", &mut out).unwrap());
        assert!(!shell_line(&db, r#"SELECT R FROM doc("d")[EVERY]//b R"#, &mut out).unwrap());
        assert!(shell_line(&db, ".quit", &mut out).unwrap());
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("d  (2 versions)"), "{text}");
        assert!(text.contains("v0"), "{text}");
        assert!(text.contains("<b>x</b>"), "{text}");
        assert!(text.contains("<b>y</b>"), "{text}");
        assert!(text.contains("2 rows"), "{text}");
        assert!(text.contains("unknown dot-command"), "{text}");
    }

    #[test]
    fn explain_analyze_prefix_and_flag() {
        let dir = tmpdir("explain");
        let db = dir.join("db");
        let f = dir.join("v.xml");
        std::fs::write(&f, "<g><r><n>Napoli</n><p>15</p></r></g>").unwrap();
        let db_s = db.to_str().unwrap();
        run_cmd(&["--db", db_s, "put", "guide", f.to_str().unwrap(), "--at", "01/01/2001"])
            .unwrap();

        let q = r#"SELECT R/p FROM doc("guide")//r R WHERE R/n = "Napoli""#;
        // --explain flag.
        let out = run_cmd(&["--db", db_s, "query", "--explain", q]).unwrap();
        assert!(out.contains("project"), "{out}");
        assert!(out.contains("index scan R: PatternScan"), "{out}");
        assert!(out.contains("rows="), "{out}");
        assert!(out.contains("<p>15</p>"), "{out}");
        // EXPLAIN ANALYZE prefix, case-insensitive.
        let prefixed = format!("explain analyze {q}");
        let out2 = run_cmd(&["--db", db_s, "query", &prefixed]).unwrap();
        assert!(out2.contains("index scan R: PatternScan"), "{out2}");
        // Plain query prints no plan tree.
        let out3 = run_cmd(&["--db", db_s, "query", q]).unwrap();
        assert!(!out3.contains("index scan"), "{out3}");

        assert_eq!(strip_explain_prefix("EXPLAIN ANALYZE SELECT x"), Some("SELECT x"));
        assert_eq!(strip_explain_prefix("  Explain  Analyze  SELECT"), Some("SELECT"));
        assert_eq!(strip_explain_prefix("EXPLAINANALYZE SELECT"), None);
        assert_eq!(strip_explain_prefix("SELECT EXPLAIN ANALYZE"), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metrics_command_text_and_json() {
        let dir = tmpdir("metrics");
        let db = dir.join("db");
        let f = dir.join("v.xml");
        std::fs::write(&f, "<g><r><n>Napoli</n><p>15</p></r></g>").unwrap();
        let db_s = db.to_str().unwrap();
        run_cmd(&["--db", db_s, "put", "guide", f.to_str().unwrap(), "--at", "01/01/2001"])
            .unwrap();

        let out = run_cmd(&["--db", db_s, "metrics"]).unwrap();
        assert!(out.contains("buffer.gets"), "{out}");
        assert!(out.contains("wal.appends"), "{out}");
        assert!(out.contains("buffer.hit_ratio_bp"), "{out}");

        let json = run_cmd(&["--db", db_s, "metrics", "--json"]).unwrap();
        assert!(json.trim_start().starts_with('{'), "{json}");
        assert!(json.contains("\"counters\""), "{json}");
        assert!(json.contains("\"histograms\""), "{json}");
        assert!(json.contains("\"wal.appends\""), "{json}");
        // Balanced braces — a cheap well-formedness check; check.sh runs a
        // real JSON parse over this output.
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count(), "{json}");

        // stats surfaces the recovery fallback counters.
        let out = run_cmd(&["--db", db_s, "stats"]).unwrap();
        assert!(out.contains("full-replay fallback(s)"), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsck_command_reports_and_repairs() {
        let dir = tmpdir("fsck");
        let db = dir.join("db");
        let f = dir.join("v.xml");
        std::fs::write(&f, "<a>x</a>").unwrap();
        let db_s = db.to_str().unwrap();
        run_cmd(&["--db", db_s, "put", "doc", f.to_str().unwrap(), "--at", "01/01/2001"]).unwrap();
        let out = run_cmd(&["--db", db_s, "fsck"]).unwrap();
        assert!(out.contains("status:           clean"), "{out}");
        assert!(out.contains("documents:        1"), "{out}");
        assert!(out.contains("index checkpoint: ok (generation"), "{out}");
        // Simulate a crash mid-append: garbage at the WAL tail.
        let mut w = std::fs::OpenOptions::new().append(true).open(db.join("wal.log")).unwrap();
        w.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        drop(w);
        // A torn tail is expected crash residue, not corruption.
        let out = run_cmd(&["--db", db_s, "fsck"]).unwrap();
        assert!(out.contains("wal torn bytes:   3"), "{out}");
        assert!(out.contains("status:           clean"), "{out}");
        let out = run_cmd(&["--db", db_s, "fsck", "--reclaim"]).unwrap();
        assert!(out.contains("reclaimed: nothing to do (no leaked pages)"), "{out}");
        let out = run_cmd(&["--db", db_s, "fsck", "--repair-tail"]).unwrap();
        assert!(out.contains("truncated from the WAL tail"), "{out}");
        let out = run_cmd(&["--db", db_s, "fsck", "--repair-tail"]).unwrap();
        assert!(out.contains("nothing to do"), "{out}");
        assert!(out.contains("journal:          absent"), "{out}");
        // A half-written (never sealed) checkpoint journal is crash
        // residue: never replayed, and retired automatically by the open
        // that every command performs — fsck already sees it gone.
        std::fs::write(db.join("journal.db"), [0xDE, 0xAD, 0xBE, 0xEF]).unwrap();
        let out = run_cmd(&["--db", db_s, "fsck"]).unwrap();
        assert!(out.contains("journal:          absent"), "{out}");
        assert!(out.contains("status:           clean"), "{out}");
        let out = run_cmd(&["--db", db_s, "fsck", "--repair-tail"]).unwrap();
        assert!(out.contains("nothing to do"), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn errors_are_reported() {
        assert!(run_cmd(&[]).is_err());
        assert!(run_cmd(&["bogus"]).is_err());
        assert!(run_cmd(&["cat"]).is_err());
        assert!(run_cmd(&["log", "missing"]).is_err());
        assert!(run_cmd(&["--db"]).is_err());
        assert!(run_cmd(&["-h"]).is_err()); // usage via error path
        assert!(run_cmd(&["traces"]).is_err()); // --connect is required
        assert!(run_cmd(&["top"]).is_err());
    }

    /// `txdb traces` and `txdb top` against an in-process server: traced
    /// requests render as span trees, the slow log renders with its plan,
    /// and the dashboard prints windowed rates from `METRICS` deltas.
    #[test]
    fn traces_and_top_render_against_a_live_server() {
        use std::sync::Arc;
        let db = Arc::new(Database::in_memory());
        db.put("d", "<a><v>1</v></a>", Timestamp::from_secs(1_000_000)).unwrap();
        let cfg = ServerConfig { slow_us: Some(0), ..Default::default() };
        let server = Server::start(Arc::clone(&db), cfg).unwrap();
        let addr = server.addr().to_string();

        let mut client = Client::connect(&*addr).unwrap();
        let (_, trace, _) = client
            .query_stream_traced(r#"SELECT R FROM doc("d")//a R"#, None, true, |_| {})
            .unwrap();
        assert!(trace.is_some());

        let out = run_cmd(&["traces", "--connect", &addr]).unwrap();
        assert!(out.contains("cmd=query"), "{out}");
        assert!(out.contains("server.cmd.query_us"), "{out}");
        assert!(out.contains("query.run_us"), "{out}");

        let out = run_cmd(&["traces", "--connect", &addr, "--slow"]).unwrap();
        assert!(out.contains("slow-query log (threshold 0µs)"), "{out}");
        assert!(out.contains("SELECT R"), "{out}");
        assert!(out.contains("scan"), "{out}");

        let out =
            run_cmd(&["top", "--connect", &addr, "--interval-ms", "20", "--ticks", "2"]).unwrap();
        assert!(out.contains("txdb top"), "{out}");
        assert!(out.contains("── window"), "{out}");

        server.shutdown().unwrap();
    }
}
