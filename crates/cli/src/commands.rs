//! Command implementations for the `txdb` binary.
//!
//! Everything takes a `Write` sink so the integration tests can drive the
//! full command surface without spawning processes.

use std::io::Write;
use std::path::PathBuf;

use txdb_base::{Error, Interval, Result, Timestamp, VersionId};
use txdb_client::{Client, ClientError};
use txdb_core::{Database, DbOptions};
use txdb_query::{strip_explain_prefix, QueryExt};
use txdb_server::{DrainReason, Server, ServerConfig};
use txdb_storage::repo::VersionKind;

/// Parsed global options + subcommand tail.
struct Cli {
    db_dir: Option<PathBuf>,
    snapshot_every: Option<u32>,
    command: Vec<String>,
}

fn usage() -> String {
    "usage: txdb [--db DIR] [--snapshot-every N] <command>\n\
     commands:\n\
       put <name> <file.xml> [--at TIME]    store a new version\n\
       delete <name> [--at TIME]            delete (tombstone)\n\
       ls                                   list documents\n\
       log <name>                           version history\n\
       cat <name> [--at TIME|--version N] [--pretty]\n\
       diff <name> <t1> <t2>                edit script between snapshots\n\
       history <name> [--from T] [--to T]   reconstruct versions in a range\n\
       query [--explain] <QUERY>            run a temporal query; --explain\n\
                                            (or an EXPLAIN ANALYZE prefix)\n\
                                            prints the timed plan tree\n\
       vacuum <name> --before TIME          purge history before a horizon\n\
       fsck [--repair-tail] [--reclaim]     verify checksums, records and\n\
                                            version chains; optionally\n\
                                            truncate a torn WAL tail and\n\
                                            free leaked (salvaged) pages\n\
       stats                                space and index statistics\n\
       metrics [--json]                     engine metrics registry dump\n\
       serve [PATH] [--addr HOST:PORT]      serve the database over TCP\n\
             [--max-conns N]                (newline-delimited JSON; see\n\
             [--max-request-bytes N]        docs/protocol.md); drains on\n\
             [--no-wal-sync]                stdin EOF or wire SHUTDOWN\n\
       shell [--connect HOST:PORT]          interactive query shell, local\n\
                                            or against a running server"
        .to_string()
}

fn parse_cli(args: &[String]) -> Result<Cli> {
    let mut db_dir = None;
    let mut snapshot_every = None;
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--db" => {
                i += 1;
                db_dir = Some(PathBuf::from(
                    args.get(i)
                        .ok_or_else(|| Error::QueryInvalid("--db needs a directory".into()))?,
                ));
            }
            "--snapshot-every" => {
                i += 1;
                snapshot_every =
                    Some(args.get(i).and_then(|v| v.parse().ok()).ok_or_else(|| {
                        Error::QueryInvalid("--snapshot-every needs a number".into())
                    })?);
            }
            "--help" | "-h" => {
                return Err(Error::QueryInvalid(usage()));
            }
            _ => rest.push(args[i].clone()),
        }
        i += 1;
    }
    Ok(Cli { db_dir, snapshot_every, command: rest })
}

/// Extracts `--flag VALUE` from a command tail, returning the remainder.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

fn now() -> Timestamp {
    Timestamp::from_micros(
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0),
    )
}

fn parse_time_arg(v: Option<String>) -> Result<Timestamp> {
    match v {
        Some(s) => Timestamp::parse(&s),
        None => Ok(now()),
    }
}

/// Entry point shared by `main` and the tests.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<()> {
    let cli = parse_cli(args)?;
    if cli.command.is_empty() {
        return Err(Error::QueryInvalid(usage()));
    }
    // `serve` opens the database with its own options (WAL sync on, no
    // per-command checkpoints) and `shell --connect` opens none at all,
    // so both are dispatched before the common open below.
    match cli.command[0].as_str() {
        "serve" => return serve(&cli, out),
        "shell" => {
            let mut tail = cli.command[1..].to_vec();
            if let Some(addr) = take_flag(&mut tail, "--connect") {
                if !tail.is_empty() {
                    return Err(Error::QueryInvalid(
                        "usage: txdb shell [--connect HOST:PORT]".into(),
                    ));
                }
                return connect_shell(&addr, out);
            }
        }
        _ => {}
    }
    let mut opts = DbOptions::new();
    if let Some(dir) = &cli.db_dir {
        opts = opts.path(dir.clone());
    }
    if let Some(k) = cli.snapshot_every {
        opts = opts.snapshot_every(k);
    }
    let db = opts.open()?;
    let report = db.recovery_report();
    if report.replayed > 0 {
        writeln!(out, "(recovered {} operations from the WAL)", report.replayed)?;
    }
    if let Some(reason) = &report.salvage {
        writeln!(out, "WARNING: opened read-only (salvage mode): {reason}")?;
        if report.unindexed_chains > 0 {
            writeln!(
                out,
                "WARNING: {} document chain(s) could not be indexed",
                report.unindexed_chains
            )?;
        }
    }
    let mut tail: Vec<String> = cli.command[1..].to_vec();
    match cli.command[0].as_str() {
        "put" => {
            let at = parse_time_arg(take_flag(&mut tail, "--at"))?;
            let [name, file] = two(&tail, "put <name> <file.xml>")?;
            let xml = std::fs::read_to_string(file)?;
            let r = db.put(name, &xml, at)?;
            db.checkpoint()?;
            if r.changed {
                writeln!(out, "{}: stored version {} @ {}", name, r.version.0, r.ts)?;
            } else {
                writeln!(out, "{name}: unchanged, no version stored")?;
            }
        }
        "delete" => {
            let at = parse_time_arg(take_flag(&mut tail, "--at"))?;
            let [name] = one(&tail, "delete <name>")?;
            match db.delete(name, at)? {
                Some(d) => {
                    db.checkpoint()?;
                    writeln!(out, "{name}: deleted @ {}", d.ts)?;
                }
                None => writeln!(out, "{name}: not present (nothing deleted)")?,
            }
        }
        "ls" => {
            for (doc, name) in db.store().list()? {
                let entries = db.store().versions(doc)?;
                let state = if db.store().is_deleted(doc)? { "deleted" } else { "live" };
                writeln!(
                    out,
                    "{name}  ({} version{}, {state})",
                    entries.len(),
                    if entries.len() == 1 { "" } else { "s" }
                )?;
            }
        }
        "log" => {
            let [name] = one(&tail, "log <name>")?;
            let doc =
                db.store().doc_id(name)?.ok_or_else(|| Error::NoSuchDocument(name.to_string()))?;
            for e in db.store().versions(doc)? {
                let kind = match e.kind {
                    VersionKind::Content => {
                        if e.snapshot_rid.is_some() {
                            "content+snapshot"
                        } else if e.delta_rid.is_some() {
                            "content"
                        } else {
                            "base"
                        }
                    }
                    VersionKind::Tombstone => "DELETED",
                    VersionKind::Purged => "purged",
                };
                writeln!(out, "v{:<4} {}  {kind}", e.version.0, e.ts)?;
            }
        }
        "cat" => {
            let at = take_flag(&mut tail, "--at");
            let version = take_flag(&mut tail, "--version");
            let pretty = take_switch(&mut tail, "--pretty");
            let [name] = one(&tail, "cat <name>")?;
            let doc =
                db.store().doc_id(name)?.ok_or_else(|| Error::NoSuchDocument(name.to_string()))?;
            let tree = match (at, version) {
                (_, Some(v)) => {
                    let v: u32 = v
                        .parse()
                        .map_err(|_| Error::QueryInvalid("--version needs a number".into()))?;
                    db.store().version_tree(doc, VersionId(v))?
                }
                (Some(t), None) => db.reconstruct_doc_at(doc, Timestamp::parse(&t)?)?,
                (None, None) => db.store().current_tree(doc)?,
            };
            let text = if pretty {
                txdb_xml::serialize::to_string_pretty(&tree)
            } else {
                txdb_xml::serialize::to_string(&tree) + "\n"
            };
            write!(out, "{text}")?;
        }
        "diff" => {
            let [name, t1, t2] = three(&tail, "diff <name> <t1> <t2>")?;
            let doc =
                db.store().doc_id(name)?.ok_or_else(|| Error::NoSuchDocument(name.to_string()))?;
            let (t1, t2) = (Timestamp::parse(t1)?, Timestamp::parse(t2)?);
            let old = db.reconstruct_doc_at(doc, t1)?;
            let new = db.reconstruct_doc_at(doc, t2)?;
            let script = db.diff_trees_xml(&old, new, t1, t2)?;
            writeln!(out, "{}", txdb_xml::serialize::to_string_pretty(&script))?;
        }
        "history" => {
            let from = take_flag(&mut tail, "--from")
                .map(|t| Timestamp::parse(&t))
                .transpose()?
                .unwrap_or(Timestamp::ZERO);
            let to = take_flag(&mut tail, "--to")
                .map(|t| Timestamp::parse(&t))
                .transpose()?
                .unwrap_or(Timestamp::FOREVER);
            let [name] = one(&tail, "history <name> [--from T] [--to T]")?;
            let doc =
                db.store().doc_id(name)?.ok_or_else(|| Error::NoSuchDocument(name.to_string()))?;
            let history = db.doc_history(doc, Interval::new(from, to))?;
            if history.is_empty() {
                writeln!(out, "{name}: no versions valid in [{from}, {to})")?;
            }
            for dv in history {
                writeln!(
                    out,
                    "v{} @ {}:\n{}",
                    dv.version.0,
                    dv.ts,
                    txdb_xml::serialize::to_string_pretty(&dv.tree)
                )?;
            }
        }
        "query" => {
            let explain = take_switch(&mut tail, "--explain");
            let [q] = one(&tail, "query [--explain] <QUERY>")?;
            run_query_explain(&db, q, explain, out)?;
        }
        "vacuum" => {
            let before = parse_time_arg(take_flag(&mut tail, "--before"))?;
            let [name] = one(&tail, "vacuum <name> --before TIME")?;
            match db.vacuum(name, before)? {
                Some(v) => {
                    db.checkpoint()?;
                    writeln!(
                        out,
                        "{name}: purged {} version{}, freed {} bytes",
                        v.purged_versions,
                        if v.purged_versions == 1 { "" } else { "s" },
                        v.freed_bytes
                    )?;
                }
                None => writeln!(out, "{name}: not present")?,
            }
        }
        "fsck" => {
            let repair = take_switch(&mut tail, "--repair-tail");
            let reclaim = take_switch(&mut tail, "--reclaim");
            if !tail.is_empty() {
                return Err(Error::QueryInvalid(
                    "usage: txdb fsck [--repair-tail] [--reclaim]".into(),
                ));
            }
            let r = db.store().fsck();
            writeln!(out, "{r}")?;
            if reclaim {
                let freed = db.store().reclaim_leaked_pages()?;
                if freed.is_empty() {
                    writeln!(out, "reclaimed: nothing to do (no leaked pages)")?;
                } else {
                    writeln!(
                        out,
                        "reclaimed: {} leaked page(s) returned to the free list",
                        freed.len()
                    )?;
                }
            }
            if repair {
                let mut repaired = false;
                if r.torn_bytes > 0 {
                    let removed = db.store().repair_wal_tail()?;
                    writeln!(out, "repaired: {removed} torn byte(s) truncated from the WAL tail")?;
                    repaired = true;
                }
                if db.store().retire_journal()? {
                    writeln!(out, "repaired: checkpoint journal retired")?;
                    repaired = true;
                }
                if !repaired {
                    writeln!(out, "repaired: nothing to do (no torn tail, no journal residue)")?;
                }
            }
            if !r.is_clean() {
                return Err(Error::Corrupt(format!(
                    "fsck found {} bad page(s) and {} error(s)",
                    r.bad_pages.len(),
                    r.errors.len()
                )));
            }
        }
        "stats" => {
            let s = db.store().space_stats()?;
            let fti = db.indexes().fti();
            writeln!(out, "documents:        {}", db.store().list()?.len())?;
            writeln!(out, "pages:            {}", s.pages)?;
            writeln!(out, "current bytes:    {}", s.current_bytes)?;
            writeln!(out, "delta bytes:      {}", s.delta_bytes)?;
            writeln!(out, "snapshot bytes:   {}", s.snapshot_bytes)?;
            writeln!(out, "metadata bytes:   {}", s.meta_bytes)?;
            writeln!(out, "fti postings:     {}", fti.posting_count())?;
            writeln!(out, "fti tokens:       {}", fti.token_count())?;
            match db.store().index_checkpoint_info() {
                Ok(Some(i)) => writeln!(
                    out,
                    "index checkpoint: generation {}, {} bytes in {} page(s)",
                    i.generation, i.bytes, i.pages
                )?,
                Ok(None) => writeln!(out, "index checkpoint: none")?,
                Err(e) => writeln!(out, "index checkpoint: unreadable ({e})")?,
            }
            if let Some(eidx) = db.indexes().eid_index() {
                writeln!(out, "eid index:        {} elements", eidx.len()?)?;
            }
            let (hits, misses, _, evictions, invalidations) = db.store().vcache_stats().snapshot();
            writeln!(out, "vcache entries:   {}", db.store().vcache().len())?;
            writeln!(out, "vcache resident:  {} bytes", db.store().vcache().resident_bytes())?;
            writeln!(out, "vcache hits:      {hits}")?;
            writeln!(out, "vcache misses:    {misses}")?;
            writeln!(out, "vcache evicted:   {evictions}")?;
            writeln!(out, "vcache dropped:   {invalidations}")?;
            // Recovery observability: how this (and, within the registry's
            // lifetime, any) open replayed history.
            let m = db.metrics().snapshot();
            writeln!(
                out,
                "recovery:         {} full-replay fallback(s), {} stale-cover replay(s), \
                 {} salvage open(s)",
                m.counter("recovery.index_fallback").unwrap_or(0),
                m.counter("recovery.stale_cover_replays").unwrap_or(0),
                m.counter("recovery.salvage_opens").unwrap_or(0),
            )?;
        }
        "metrics" => {
            let json = take_switch(&mut tail, "--json");
            if !tail.is_empty() {
                return Err(Error::QueryInvalid("usage: txdb metrics [--json]".into()));
            }
            db.store().update_derived_metrics();
            let snap = db.metrics().snapshot();
            if json {
                writeln!(out, "{}", snap.to_json())?;
            } else {
                write!(out, "{}", snap.to_text())?;
            }
        }
        "shell" => {
            shell(&db, out)?;
        }
        other => {
            return Err(Error::QueryInvalid(format!("unknown command `{other}`\n{}", usage())));
        }
    }
    Ok(())
}

/// `txdb serve [PATH] [--addr A] [--max-conns N] [--max-request-bytes N]
/// [--no-wal-sync]` — run the TCP front end until a drain is requested.
///
/// The database opens with WAL sync **on** (each wire commit is durable;
/// concurrent committers share fsyncs through group commit) and no
/// per-command checkpoints — the WAL absorbs the write stream and is
/// checkpointed once, at drain. Draining is triggered by stdin reaching
/// EOF (the supervisor closed our input) or a client `SHUTDOWN`.
fn serve(cli: &Cli, out: &mut dyn Write) -> Result<()> {
    let mut tail: Vec<String> = cli.command[1..].to_vec();
    let addr = take_flag(&mut tail, "--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let max_conns = match take_flag(&mut tail, "--max-conns") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| Error::QueryInvalid("--max-conns needs a number".into()))?,
        None => ServerConfig::default().max_conns,
    };
    let max_request_bytes = match take_flag(&mut tail, "--max-request-bytes") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| Error::QueryInvalid("--max-request-bytes needs a number".into()))?,
        None => ServerConfig::default().max_request_bytes,
    };
    let wal_sync = !take_switch(&mut tail, "--no-wal-sync");
    let path = match tail.len() {
        0 => cli.db_dir.clone(),
        1 => Some(PathBuf::from(tail.remove(0))),
        _ => return Err(Error::QueryInvalid("usage: txdb serve [PATH] [--addr …]".into())),
    };
    let mut opts = DbOptions::new().wal_sync(wal_sync);
    if let Some(dir) = path {
        opts = opts.path(dir);
    }
    if let Some(k) = cli.snapshot_every {
        opts = opts.snapshot_every(k);
    }
    let db = std::sync::Arc::new(opts.open()?);
    let report = db.recovery_report();
    if report.replayed > 0 {
        writeln!(out, "(recovered {} operations from the WAL)", report.replayed)?;
    }
    if let Some(reason) = &report.salvage {
        writeln!(out, "WARNING: serving read-only (salvage mode): {reason}")?;
    }
    let cfg = ServerConfig { addr, max_conns, max_request_bytes };
    let server = Server::start(std::sync::Arc::clone(&db), cfg)?;
    writeln!(out, "listening on {}", server.addr())?;
    out.flush()?;
    // Supervisor protocol: when our stdin closes, drain. (No signal
    // handling — the standard library has none and the workspace links
    // no libc bindings; closing stdin or a wire SHUTDOWN are the two
    // drain triggers.)
    let host_drain = server.drain_requester();
    std::thread::spawn(move || {
        let mut sink = Vec::new();
        let mut stdin = std::io::stdin();
        let _ = std::io::Read::read_to_end(&mut stdin, &mut sink);
        let _ = host_drain.send(DrainReason::HostRequest);
    });
    let reason = server.wait_drain_requested();
    writeln!(
        out,
        "draining ({})",
        match reason {
            DrainReason::ClientRequest => "client SHUTDOWN",
            DrainReason::HostRequest => "stdin closed",
        }
    )?;
    out.flush()?;
    let drained = server.shutdown()?;
    writeln!(
        out,
        "drained: {} session(s) open at shutdown, {} served in total",
        drained.sessions_drained, drained.sessions_total
    )?;
    Ok(())
}

/// `txdb shell --connect HOST:PORT` — the interactive shell against a
/// running server instead of a locally opened database.
fn connect_shell(addr: &str, out: &mut dyn Write) -> Result<()> {
    let mut client = Client::connect(addr).map_err(Error::Io)?;
    writeln!(out, "txdb shell — connected to {addr}; .help for commands")?;
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        write!(out, "txdb> ")?;
        out.flush()?;
        line.clear();
        if stdin.read_line(&mut line)? == 0 {
            break; // EOF
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        match connect_shell_line(&mut client, input, out) {
            Ok(true) => break,
            Ok(false) => {}
            // The transport is gone: no further command can succeed.
            Err(ClientError::Io(e)) => {
                writeln!(out, "connection lost: {e}")?;
                break;
            }
            Err(e) => writeln!(out, "error: {e}")?,
        }
    }
    Ok(())
}

/// Executes one remote-shell line; returns `true` to quit.
fn connect_shell_line(
    client: &mut Client,
    input: &str,
    out: &mut dyn Write,
) -> std::result::Result<bool, ClientError> {
    let micros = |s: &str| {
        Timestamp::parse(s)
            .map(|t| t.micros())
            .map_err(|e| ClientError::Protocol(format!("bad time: {e}")))
    };
    match input {
        ".quit" | ".exit" | ".q" => return Ok(true),
        ".help" => {
            writeln!(
                out,
                ".put NAME FILE [TIME]   store FILE as a new version of NAME\n\
                 .delete NAME [TIME]     delete (tombstone)\n\
                 .pin TIME               pin a snapshot; prints the pin id\n\
                 .unpin ID               release a pin\n\
                 .stats                  server space/index statistics\n\
                 .metrics                server metrics snapshot (JSON)\n\
                 .ping                   round-trip check\n\
                 .shutdown               ask the server to drain\n\
                 .quit                   leave\n\
                 anything else           executed as a temporal query"
            )?;
        }
        ".ping" => {
            let t = std::time::Instant::now();
            client.ping()?;
            writeln!(out, "pong ({:.1} ms)", t.elapsed().as_secs_f64() * 1e3)?;
        }
        ".stats" => writeln!(out, "{}", client.stats()?)?,
        ".metrics" => writeln!(out, "{}", client.metrics()?)?,
        ".shutdown" => {
            client.shutdown_server()?;
            writeln!(out, "server draining")?;
            return Ok(true);
        }
        _ if input.starts_with(".put ") => {
            let args: Vec<&str> = input[5..].split_whitespace().collect();
            let (name, file, at) = match args.as_slice() {
                [n, f] => (n, f, None),
                [n, f, t] => (n, f, Some(micros(t)?)),
                _ => return Err(ClientError::Protocol("usage: .put NAME FILE [TIME]".into())),
            };
            let xml = std::fs::read_to_string(file)?;
            let r = client.put(name, &xml, at)?;
            match r.version {
                Some(v) => writeln!(out, "{name}: stored version {v}")?,
                None => writeln!(out, "{name}: unchanged, no version stored")?,
            }
        }
        _ if input.starts_with(".delete ") => {
            let args: Vec<&str> = input[8..].split_whitespace().collect();
            let (name, at) = match args.as_slice() {
                [n] => (n, None),
                [n, t] => (n, Some(micros(t)?)),
                _ => return Err(ClientError::Protocol("usage: .delete NAME [TIME]".into())),
            };
            if client.delete(name, at)? {
                writeln!(out, "{name}: deleted")?;
            } else {
                writeln!(out, "{name}: not present (nothing deleted)")?;
            }
        }
        _ if input.starts_with(".pin ") => {
            let id = client.pin(micros(input[5..].trim())?)?;
            writeln!(out, "pin {id}")?;
        }
        _ if input.starts_with(".unpin ") => {
            let id: u64 = input[7..]
                .trim()
                .parse()
                .map_err(|_| ClientError::Protocol("usage: .unpin ID".into()))?;
            client.unpin(id)?;
            writeln!(out, "released")?;
        }
        _ if input.starts_with('.') => {
            writeln!(out, "unknown dot-command; .help lists them")?;
        }
        query => {
            let start = std::time::Instant::now();
            let mut rows = 0usize;
            write!(out, "<results>")?;
            let (explain, done) = client.query_stream(query, None, |row| {
                let _ = write!(out, "<result>");
                for v in row {
                    let _ = write!(out, "{v}");
                }
                let _ = write!(out, "</result>");
                rows += 1;
            })?;
            writeln!(out, "</results>")?;
            if let Some(tree) = explain {
                write!(out, "{tree}")?;
            }
            writeln!(
                out,
                "-- {} row{} in {:.1} ms ({} reconstruction{}, {} cache hit{})",
                rows,
                if rows == 1 { "" } else { "s" },
                start.elapsed().as_secs_f64() * 1e3,
                done.reconstructions,
                if done.reconstructions == 1 { "" } else { "s" },
                done.cache_hits,
                if done.cache_hits == 1 { "" } else { "s" },
            )?;
        }
    }
    Ok(false)
}

fn run_query(db: &Database, q: &str, out: &mut dyn Write) -> Result<()> {
    run_query_explain(db, q, false, out)
}

fn run_query_explain(db: &Database, q: &str, explain: bool, out: &mut dyn Write) -> Result<()> {
    let (q, explain) = match strip_explain_prefix(q) {
        Some(rest) => (rest, true),
        None => (q, explain),
    };
    let start = std::time::Instant::now();
    let req = db.query(q).at(now());
    let (rows, stats) = if explain {
        // EXPLAIN ANALYZE drains the tree anyway (the plan annotations
        // cover the whole run), so materialise and print the tree first.
        let r = req.explain().run()?;
        if let Some(tree) = &r.explain {
            write!(out, "{}", tree.render())?;
        }
        writeln!(out, "{}", r.to_xml())?;
        (r.len(), r.stats)
    } else {
        // The plain path streams: each row is rendered as soon as the
        // operator tree produces it, never materialising the result.
        let mut stream = req.stream()?;
        write!(out, "<results>")?;
        let mut rows = 0usize;
        for row in &mut stream {
            write!(out, "<result>")?;
            for v in row? {
                write!(out, "{}", v.as_text())?;
            }
            write!(out, "</result>")?;
            rows += 1;
        }
        writeln!(out, "</results>")?;
        (rows, stream.stats())
    };
    let elapsed = start.elapsed();
    writeln!(
        out,
        "-- {} row{} in {:.1} ms ({} reconstruction{}, {} cache hit{})",
        rows,
        if rows == 1 { "" } else { "s" },
        elapsed.as_secs_f64() * 1e3,
        stats.reconstructions,
        if stats.reconstructions == 1 { "" } else { "s" },
        stats.cache_hits,
        if stats.cache_hits == 1 { "" } else { "s" },
    )?;
    Ok(())
}

/// The interactive shell: queries, plus dot-commands for inspection.
fn shell(db: &Database, out: &mut dyn Write) -> Result<()> {
    writeln!(out, "txdb shell — enter a temporal query, or .help for commands")?;
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        write!(out, "txdb> ")?;
        out.flush()?;
        line.clear();
        if stdin.read_line(&mut line)? == 0 {
            break; // EOF
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        match shell_line(db, input, out) {
            Ok(true) => break,
            Ok(false) => {}
            Err(e) => writeln!(out, "error: {e}")?,
        }
    }
    Ok(())
}

/// Executes one shell line; returns `true` to quit.
pub fn shell_line(db: &Database, input: &str, out: &mut dyn Write) -> Result<bool> {
    match input {
        ".quit" | ".exit" | ".q" => return Ok(true),
        ".help" => {
            writeln!(
                out,
                ".ls            list documents\n\
                 .log NAME      version history of NAME\n\
                 .history NAME  reconstruct every version of NAME\n\
                 .quit          leave\n\
                 anything else  executed as a temporal query"
            )?;
        }
        ".ls" => {
            for (doc, name) in db.store().list()? {
                let n = db.store().versions(doc)?.len();
                writeln!(out, "{name}  ({n} versions)")?;
            }
        }
        _ if input.starts_with(".log ") => {
            let name = input[5..].trim();
            let doc =
                db.store().doc_id(name)?.ok_or_else(|| Error::NoSuchDocument(name.to_string()))?;
            for e in db.store().versions(doc)? {
                writeln!(out, "v{:<4} {}", e.version.0, e.ts)?;
            }
        }
        _ if input.starts_with(".history ") => {
            let name = input[9..].trim();
            let doc =
                db.store().doc_id(name)?.ok_or_else(|| Error::NoSuchDocument(name.to_string()))?;
            for dv in db.doc_history(doc, Interval::ALL)? {
                writeln!(
                    out,
                    "v{} @ {}: {}",
                    dv.version.0,
                    dv.ts,
                    txdb_xml::serialize::to_string(&dv.tree)
                )?;
            }
        }
        _ if input.starts_with('.') => {
            writeln!(out, "unknown dot-command; .help lists them")?;
        }
        query => run_query(db, query, out)?,
    }
    Ok(false)
}

fn one<'a>(args: &'a [String], usage: &str) -> Result<[&'a str; 1]> {
    match args {
        [a] => Ok([a.as_str()]),
        _ => Err(Error::QueryInvalid(format!("usage: txdb {usage}"))),
    }
}

fn two<'a>(args: &'a [String], usage: &str) -> Result<[&'a str; 2]> {
    match args {
        [a, b] => Ok([a.as_str(), b.as_str()]),
        _ => Err(Error::QueryInvalid(format!("usage: txdb {usage}"))),
    }
}

fn three<'a>(args: &'a [String], usage: &str) -> Result<[&'a str; 3]> {
    match args {
        [a, b, c] => Ok([a.as_str(), b.as_str(), c.as_str()]),
        _ => Err(Error::QueryInvalid(format!("usage: txdb {usage}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("txdb-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_cmd(args: &[&str]) -> Result<String> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn put_ls_log_cat_roundtrip() {
        let dir = tmpdir("roundtrip");
        let db = dir.join("db");
        let f1 = dir.join("v1.xml");
        let f2 = dir.join("v2.xml");
        std::fs::write(&f1, "<g><r><n>Napoli</n><p>15</p></r></g>").unwrap();
        std::fs::write(&f2, "<g><r><n>Napoli</n><p>18</p></r></g>").unwrap();
        let db_s = db.to_str().unwrap();

        let out =
            run_cmd(&["--db", db_s, "put", "guide", f1.to_str().unwrap(), "--at", "01/01/2001"])
                .unwrap();
        assert!(out.contains("stored version 0"), "{out}");
        let out =
            run_cmd(&["--db", db_s, "put", "guide", f2.to_str().unwrap(), "--at", "31/01/2001"])
                .unwrap();
        assert!(out.contains("stored version 1"), "{out}");
        // Unchanged put.
        let out =
            run_cmd(&["--db", db_s, "put", "guide", f2.to_str().unwrap(), "--at", "01/02/2001"])
                .unwrap();
        assert!(out.contains("unchanged"), "{out}");

        let out = run_cmd(&["--db", db_s, "ls"]).unwrap();
        assert!(out.contains("guide  (2 versions, live)"), "{out}");

        let out = run_cmd(&["--db", db_s, "log", "guide"]).unwrap();
        assert!(out.contains("v0    2001-01-01  base"), "{out}");
        assert!(out.contains("v1    2001-01-31  content"), "{out}");

        // cat current, at a time, and by version.
        let out = run_cmd(&["--db", db_s, "cat", "guide"]).unwrap();
        assert!(out.contains("<p>18</p>"), "{out}");
        let out = run_cmd(&["--db", db_s, "cat", "guide", "--at", "15/01/2001"]).unwrap();
        assert!(out.contains("<p>15</p>"), "{out}");
        let out = run_cmd(&["--db", db_s, "cat", "guide", "--version", "0"]).unwrap();
        assert!(out.contains("<p>15</p>"), "{out}");

        // diff between the snapshots.
        let out = run_cmd(&["--db", db_s, "diff", "guide", "02/01/2001", "01/02/2001"]).unwrap();
        assert!(out.contains("<old>15</old>"), "{out}");
        assert!(out.contains("<new>18</new>"), "{out}");

        // query end-to-end.
        let out =
            run_cmd(&["--db", db_s, "query", r#"SELECT R/p FROM doc("guide")[15/01/2001]//r R"#])
                .unwrap();
        assert!(out.contains("<p>15</p>"), "{out}");
        assert!(out.contains("1 row"), "{out}");

        // stats mention stored bytes.
        let out = run_cmd(&["--db", db_s, "stats"]).unwrap();
        assert!(out.contains("documents:        1"), "{out}");
        assert!(out.contains("fti postings"), "{out}");
        assert!(out.contains("index checkpoint: generation"), "{out}");
        assert!(out.contains("vcache hits"), "{out}");

        // history range.
        let out = run_cmd(&["--db", db_s, "history", "guide", "--from", "10/01/2001"]).unwrap();
        assert!(out.contains("v1 @ 2001-01-31"), "{out}");
        assert!(out.contains("v0 @ 2001-01-01"), "{out}");
        let out = run_cmd(&["--db", db_s, "history", "guide", "--to", "01/01/1999"]).unwrap();
        assert!(out.contains("no versions valid"), "{out}");

        // delete.
        let out = run_cmd(&["--db", db_s, "delete", "guide", "--at", "01/03/2001"]).unwrap();
        assert!(out.contains("deleted @ 2001-03-01"), "{out}");
        let out = run_cmd(&["--db", db_s, "ls"]).unwrap();
        assert!(out.contains("deleted"), "{out}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shell_lines() {
        let db = Database::in_memory();
        db.put("d", "<a><b>x</b></a>", Timestamp::from_date(2001, 1, 1)).unwrap();
        db.put("d", "<a><b>y</b></a>", Timestamp::from_date(2001, 1, 2)).unwrap();
        let mut out = Vec::new();
        assert!(!shell_line(&db, ".ls", &mut out).unwrap());
        assert!(!shell_line(&db, ".log d", &mut out).unwrap());
        assert!(!shell_line(&db, ".history d", &mut out).unwrap());
        assert!(!shell_line(&db, ".help", &mut out).unwrap());
        assert!(!shell_line(&db, ".bogus", &mut out).unwrap());
        assert!(!shell_line(&db, r#"SELECT R FROM doc("d")[EVERY]//b R"#, &mut out).unwrap());
        assert!(shell_line(&db, ".quit", &mut out).unwrap());
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("d  (2 versions)"), "{text}");
        assert!(text.contains("v0"), "{text}");
        assert!(text.contains("<b>x</b>"), "{text}");
        assert!(text.contains("<b>y</b>"), "{text}");
        assert!(text.contains("2 rows"), "{text}");
        assert!(text.contains("unknown dot-command"), "{text}");
    }

    #[test]
    fn explain_analyze_prefix_and_flag() {
        let dir = tmpdir("explain");
        let db = dir.join("db");
        let f = dir.join("v.xml");
        std::fs::write(&f, "<g><r><n>Napoli</n><p>15</p></r></g>").unwrap();
        let db_s = db.to_str().unwrap();
        run_cmd(&["--db", db_s, "put", "guide", f.to_str().unwrap(), "--at", "01/01/2001"])
            .unwrap();

        let q = r#"SELECT R/p FROM doc("guide")//r R WHERE R/n = "Napoli""#;
        // --explain flag.
        let out = run_cmd(&["--db", db_s, "query", "--explain", q]).unwrap();
        assert!(out.contains("project"), "{out}");
        assert!(out.contains("index scan R: PatternScan"), "{out}");
        assert!(out.contains("rows="), "{out}");
        assert!(out.contains("<p>15</p>"), "{out}");
        // EXPLAIN ANALYZE prefix, case-insensitive.
        let prefixed = format!("explain analyze {q}");
        let out2 = run_cmd(&["--db", db_s, "query", &prefixed]).unwrap();
        assert!(out2.contains("index scan R: PatternScan"), "{out2}");
        // Plain query prints no plan tree.
        let out3 = run_cmd(&["--db", db_s, "query", q]).unwrap();
        assert!(!out3.contains("index scan"), "{out3}");

        assert_eq!(strip_explain_prefix("EXPLAIN ANALYZE SELECT x"), Some("SELECT x"));
        assert_eq!(strip_explain_prefix("  Explain  Analyze  SELECT"), Some("SELECT"));
        assert_eq!(strip_explain_prefix("EXPLAINANALYZE SELECT"), None);
        assert_eq!(strip_explain_prefix("SELECT EXPLAIN ANALYZE"), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metrics_command_text_and_json() {
        let dir = tmpdir("metrics");
        let db = dir.join("db");
        let f = dir.join("v.xml");
        std::fs::write(&f, "<g><r><n>Napoli</n><p>15</p></r></g>").unwrap();
        let db_s = db.to_str().unwrap();
        run_cmd(&["--db", db_s, "put", "guide", f.to_str().unwrap(), "--at", "01/01/2001"])
            .unwrap();

        let out = run_cmd(&["--db", db_s, "metrics"]).unwrap();
        assert!(out.contains("buffer.gets"), "{out}");
        assert!(out.contains("wal.appends"), "{out}");
        assert!(out.contains("buffer.hit_ratio_bp"), "{out}");

        let json = run_cmd(&["--db", db_s, "metrics", "--json"]).unwrap();
        assert!(json.trim_start().starts_with('{'), "{json}");
        assert!(json.contains("\"counters\""), "{json}");
        assert!(json.contains("\"histograms\""), "{json}");
        assert!(json.contains("\"wal.appends\""), "{json}");
        // Balanced braces — a cheap well-formedness check; check.sh runs a
        // real JSON parse over this output.
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count(), "{json}");

        // stats surfaces the recovery fallback counters.
        let out = run_cmd(&["--db", db_s, "stats"]).unwrap();
        assert!(out.contains("full-replay fallback(s)"), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsck_command_reports_and_repairs() {
        let dir = tmpdir("fsck");
        let db = dir.join("db");
        let f = dir.join("v.xml");
        std::fs::write(&f, "<a>x</a>").unwrap();
        let db_s = db.to_str().unwrap();
        run_cmd(&["--db", db_s, "put", "doc", f.to_str().unwrap(), "--at", "01/01/2001"]).unwrap();
        let out = run_cmd(&["--db", db_s, "fsck"]).unwrap();
        assert!(out.contains("status:           clean"), "{out}");
        assert!(out.contains("documents:        1"), "{out}");
        assert!(out.contains("index checkpoint: ok (generation"), "{out}");
        // Simulate a crash mid-append: garbage at the WAL tail.
        let mut w = std::fs::OpenOptions::new().append(true).open(db.join("wal.log")).unwrap();
        w.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        drop(w);
        // A torn tail is expected crash residue, not corruption.
        let out = run_cmd(&["--db", db_s, "fsck"]).unwrap();
        assert!(out.contains("wal torn bytes:   3"), "{out}");
        assert!(out.contains("status:           clean"), "{out}");
        let out = run_cmd(&["--db", db_s, "fsck", "--reclaim"]).unwrap();
        assert!(out.contains("reclaimed: nothing to do (no leaked pages)"), "{out}");
        let out = run_cmd(&["--db", db_s, "fsck", "--repair-tail"]).unwrap();
        assert!(out.contains("truncated from the WAL tail"), "{out}");
        let out = run_cmd(&["--db", db_s, "fsck", "--repair-tail"]).unwrap();
        assert!(out.contains("nothing to do"), "{out}");
        assert!(out.contains("journal:          absent"), "{out}");
        // A half-written (never sealed) checkpoint journal is crash
        // residue: never replayed, and retired automatically by the open
        // that every command performs — fsck already sees it gone.
        std::fs::write(db.join("journal.db"), [0xDE, 0xAD, 0xBE, 0xEF]).unwrap();
        let out = run_cmd(&["--db", db_s, "fsck"]).unwrap();
        assert!(out.contains("journal:          absent"), "{out}");
        assert!(out.contains("status:           clean"), "{out}");
        let out = run_cmd(&["--db", db_s, "fsck", "--repair-tail"]).unwrap();
        assert!(out.contains("nothing to do"), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn errors_are_reported() {
        assert!(run_cmd(&[]).is_err());
        assert!(run_cmd(&["bogus"]).is_err());
        assert!(run_cmd(&["cat"]).is_err());
        assert!(run_cmd(&["log", "missing"]).is_err());
        assert!(run_cmd(&["--db"]).is_err());
        assert!(run_cmd(&["-h"]).is_err()); // usage via error path
    }
}
