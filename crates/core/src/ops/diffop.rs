//! The `Diff` operator (§7.3.8).
//!
//! "In order to generate the difference between elements, an XML
//! difference algorithm with the subtrees rooted at the elements as input
//! can be used." The result is an **edit script represented as XML** (§6:
//! "as long as an edit script is represented in XML this operator does not
//! break closure properties of queries"), so it can be returned from a
//! query, post-processed by the application, or queried again.
//!
//! `E1` and `E2` "can be versions of the same element, but can also
//! represent different documents or subtrees of elements" — both inputs
//! are TEIDs and each is reconstructed independently.

use txdb_base::{Result, Teid, Timestamp, VersionId, Xid};
use txdb_delta::{delta_to_xml, diff_trees};
use txdb_xml::tree::Tree;

use crate::db::Database;

impl Database {
    /// `Diff(E1, E2)` — the edit script turning the subtree at `e1` into
    /// the subtree at `e2`, as an XML document.
    pub fn diff(&self, e1: Teid, e2: Teid) -> Result<Tree> {
        let old = self.reconstruct(e1)?;
        let new = self.reconstruct(e2)?;
        diff_subtrees(&old, new, e1.ts, e2.ts)
    }

    /// `Diff` between two already-reconstructed trees (used by the query
    /// executor when operands are computed expressions).
    pub fn diff_trees_xml(
        &self,
        old: &Tree,
        new: Tree,
        t1: Timestamp,
        t2: Timestamp,
    ) -> Result<Tree> {
        diff_subtrees(old, new, t1, t2)
    }
}

fn diff_subtrees(old: &Tree, mut new: Tree, t1: Timestamp, t2: Timestamp) -> Result<Tree> {
    // The inputs may come from different documents with colliding XIDs;
    // diffing works on content, so fresh XIDs are drawn above both ranges.
    let max_xid = old
        .iter()
        .map(|n| old.node(n).xid.0)
        .chain(new.iter().map(|n| new.node(n).xid.0))
        .max()
        .unwrap_or(0);
    let mut next = Xid(max_xid + 1);
    let res = diff_trees(old, &mut new, &mut next, VersionId(0), t1, t2)?;
    Ok(delta_to_xml(&res.delta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdb_base::Eid;
    use txdb_xml::serialize::to_string;

    fn ts(n: u64) -> Timestamp {
        Timestamp::from_micros(n * 1000)
    }

    #[test]
    fn diff_two_versions_of_same_element() {
        let db = Database::in_memory();
        let doc = db.put("d", "<r><name>Napoli</name><price>15</price></r>", ts(10)).unwrap().doc;
        db.put("d", "<r><name>Napoli</name><price>18</price></r>", ts(20)).unwrap();
        let cur = db.store().current_tree(doc).unwrap();
        let eid = Eid::new(doc, cur.node(cur.root().unwrap()).xid);
        let script = db.diff(eid.at(ts(10)), eid.at(ts(20))).unwrap();
        let text = to_string(&script);
        assert!(text.starts_with("<delta"), "{text}");
        assert!(text.contains("<update"), "{text}");
        assert!(text.contains("<old>15</old>"), "{text}");
        assert!(text.contains("<new>18</new>"), "{text}");
        // Closure: the result is parseable XML and decodes as a delta.
        let reparsed = txdb_xml::parse::parse_document(&text).unwrap();
        assert!(txdb_delta::delta_from_xml(&reparsed).is_ok());
    }

    #[test]
    fn diff_across_documents() {
        let db = Database::in_memory();
        let d1 = db.put("a", "<r><n>Napoli</n></r>", ts(10)).unwrap().doc;
        let d2 = db.put("b", "<r><n>Akropolis</n></r>", ts(11)).unwrap().doc;
        let t1 = db.store().current_tree(d1).unwrap();
        let t2 = db.store().current_tree(d2).unwrap();
        let e1 = Eid::new(d1, t1.node(t1.root().unwrap()).xid);
        let e2 = Eid::new(d2, t2.node(t2.root().unwrap()).xid);
        let script = db.diff(e1.at(ts(10)), e2.at(ts(11))).unwrap();
        let text = to_string(&script);
        assert!(text.contains("napoli") || text.contains("Napoli"), "{text}");
    }

    #[test]
    fn identical_elements_empty_script() {
        let db = Database::in_memory();
        let doc = db.put("d", "<r><n>same</n></r>", ts(10)).unwrap().doc;
        db.put("d", "<r><n>same</n></r><x/>", ts(20)).unwrap();
        let t0 = db.store().version_tree(doc, VersionId(0)).unwrap();
        let r = t0.root().unwrap();
        let eid = Eid::new(doc, t0.node(r).xid);
        // The <r> subtree is unchanged between versions.
        let script = db.diff(eid.at(ts(10)), eid.at(ts(20))).unwrap();
        let root = script.root().unwrap();
        assert_eq!(script.node(root).children().len(), 0, "no ops");
    }
}
