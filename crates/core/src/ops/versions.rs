//! `PreviousTS`, `NextTS` and `CurrentTS` (§7.3.7).
//!
//! "These operators can be evaluated by a lookup in the delta index for a
//! particular document. The EID gives the document identifier, and given a
//! certain timestamp the previous, next, and current timestamps can be
//! found by a lookup in the delta index." The returned timestamp together
//! with the EID (i.e. a TEID) can then be fed to `Reconstruct`.
//!
//! Semantics around tombstones: only *content* versions have timestamps to
//! return; the version chain may contain deletion gaps, which these
//! operators step across. `CurrentTS` returns `None` when the document is
//! deleted (there is no current version); `NextTS` of the last version is
//! `None`; `PreviousTS` of the first is `None` — matching the paper's note
//! that the current version's timestamp "is given implicitly".

use txdb_base::{Eid, Error, Result, Teid, Timestamp};
use txdb_storage::repo::VersionKind;

use crate::db::Database;

impl Database {
    /// `PreviousTS(TEID)` — the timestamp of the previous (content) version
    /// of the element's document.
    pub fn previous_ts(&self, teid: Teid) -> Result<Option<Timestamp>> {
        let doc = teid.doc();
        let v = self.store().version_at(doc, teid.ts)?.ok_or(Error::NotValidAt(doc, teid.ts))?;
        let entries = self.store().versions(doc)?;
        Ok(entries[..v.0 as usize]
            .iter()
            .rev()
            .find(|e| e.kind == VersionKind::Content)
            .map(|e| e.ts))
    }

    /// `NextTS(TEID)` — the timestamp of the next (content) version.
    pub fn next_ts(&self, teid: Teid) -> Result<Option<Timestamp>> {
        let doc = teid.doc();
        let v = self.store().version_at(doc, teid.ts)?.ok_or(Error::NotValidAt(doc, teid.ts))?;
        let entries = self.store().versions(doc)?;
        Ok(entries[(v.0 as usize + 1)..]
            .iter()
            .find(|e| e.kind == VersionKind::Content)
            .map(|e| e.ts))
    }

    /// `CurrentTS(EID)` — the timestamp of the current version of the
    /// element's document ("timestamp is not needed for the current
    /// version, as this is given implicitly"); `None` if deleted.
    pub fn current_ts(&self, eid: Eid) -> Result<Option<Timestamp>> {
        let entries = self.store().versions(eid.doc)?;
        let Some(last) = entries.last() else { return Ok(None) };
        if last.kind == VersionKind::Tombstone {
            return Ok(None);
        }
        Ok(Some(last.ts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdb_base::{DocId, Xid};

    fn ts(n: u64) -> Timestamp {
        Timestamp::from_micros(n * 1000)
    }

    fn db3() -> (Database, DocId, Eid) {
        let db = Database::in_memory();
        let doc = db.put("d", "<a>1</a>", ts(10)).unwrap().doc;
        db.put("d", "<a>2</a>", ts(20)).unwrap();
        db.put("d", "<a>3</a>", ts(30)).unwrap();
        let eid = Eid::new(doc, Xid(1));
        (db, doc, eid)
    }

    #[test]
    fn previous_next_current_chain() {
        let (db, _, eid) = db3();
        // At t=25 we are in version 1 (@20).
        let teid = eid.at(ts(25));
        assert_eq!(db.previous_ts(teid).unwrap(), Some(ts(10)));
        assert_eq!(db.next_ts(teid).unwrap(), Some(ts(30)));
        assert_eq!(db.current_ts(eid).unwrap(), Some(ts(30)));
        // Hopping: PREVIOUS(PREVIOUS(current)) reaches v0.
        let prev = db.previous_ts(eid.at(ts(99))).unwrap().unwrap();
        let prev2 = db.previous_ts(eid.at(prev)).unwrap().unwrap();
        assert_eq!(prev2, ts(10));
    }

    #[test]
    fn boundaries_are_none() {
        let (db, _, eid) = db3();
        assert_eq!(db.previous_ts(eid.at(ts(10))).unwrap(), None);
        assert_eq!(db.next_ts(eid.at(ts(35))).unwrap(), None);
    }

    #[test]
    fn tombstones_are_stepped_over() {
        let db = Database::in_memory();
        let doc = db.put("d", "<a>1</a>", ts(10)).unwrap().doc;
        db.delete("d", ts(20)).unwrap();
        db.put("d", "<a>2</a>", ts(30)).unwrap();
        let eid = Eid::new(doc, Xid(1));
        // From the resurrected version, previous content version is v0.
        assert_eq!(db.previous_ts(eid.at(ts(30))).unwrap(), Some(ts(10)));
        // From v0, next content version skips the tombstone.
        assert_eq!(db.next_ts(eid.at(ts(10))).unwrap(), Some(ts(30)));
        assert_eq!(db.current_ts(eid).unwrap(), Some(ts(30)));
        db.delete("d", ts(40)).unwrap();
        assert_eq!(db.current_ts(eid).unwrap(), None);
    }

    #[test]
    fn combined_with_reconstruct() {
        // The §6 example: retrieve the previous version of an element.
        let (db, _, eid) = db3();
        let prev_ts = db.previous_ts(eid.at(ts(99))).unwrap().unwrap();
        let prev_tree = db.reconstruct(eid.at(prev_ts)).unwrap();
        assert_eq!(txdb_xml::serialize::to_string(&prev_tree), "<a>2</a>");
    }

    #[test]
    fn invalid_time_errors() {
        let (db, _, eid) = db3();
        assert!(db.previous_ts(eid.at(ts(1))).is_err());
    }
}
