//! `Reconstruct`, `DocHistory` and `ElementHistory` (§7.3.3–7.3.5).
//!
//! * `Reconstruct(TEID)` rebuilds the subtree rooted at the TEID's EID in
//!   the version its timestamp selects: deltas are applied *backwards*
//!   from the nearest complete materialisation (the current version, or
//!   the oldest snapshot at/after the target — §7.3.3), "the most current
//!   deltas first".
//! * `DocHistory(document, t1, t2)` returns all versions valid in
//!   `[t1, t2)`, **backwards** ("most previous versions first" — §7.3.4,
//!   where the paper means most *recent* first, as its algorithm
//!   reconstructs from the newest downwards). The reconstruction is
//!   incremental: the newest version in range is reconstructed once and
//!   each earlier version costs exactly one more backward delta.
//! * `ElementHistory(EID, t1, t2)` runs DocHistory and "filters out the
//!   appropriate subtree rooted by EID" (§7.3.5); the paper notes the
//!   whole deltas must be read anyway, which the cost counters show.

use txdb_base::{Eid, Error, Interval, Result, Teid, Timestamp, VersionId};
use txdb_storage::repo::VersionKind;
use txdb_xml::tree::Tree;

use crate::db::Database;

/// One reconstructed document version.
#[derive(Debug)]
pub struct DocVersion {
    /// Version number.
    pub version: VersionId,
    /// Commit timestamp (the TEID timestamp of every element in it).
    pub ts: Timestamp,
    /// The full reconstructed forest.
    pub tree: Tree,
}

/// One version of an element (output of `ElementHistory`).
#[derive(Debug)]
pub struct ElementVersion {
    /// TEID of this element version.
    pub teid: Teid,
    /// Document version it comes from.
    pub version: VersionId,
    /// The subtree rooted at the element, identity preserved.
    pub subtree: Tree,
}

impl Database {
    /// `Reconstruct(TEID)` — the subtree rooted at the element in the
    /// version valid at the TEID's timestamp (§7.3.3).
    pub fn reconstruct(&self, teid: Teid) -> Result<Tree> {
        Ok(self.reconstruct_counted(teid)?.0)
    }

    /// `Reconstruct` with the number of deltas applied (cost metric E4).
    pub fn reconstruct_counted(&self, teid: Teid) -> Result<(Tree, usize)> {
        let doc = teid.doc();
        let v = self.store().version_at(doc, teid.ts)?.ok_or(Error::NotValidAt(doc, teid.ts))?;
        let (tree, applied) = self.store().version_tree_counted(doc, v)?;
        let node = tree.find_xid(teid.xid()).ok_or(Error::NoSuchElement(teid.eid))?;
        Ok((tree.extract_subtree(node), applied))
    }

    /// Reconstructs the *whole document* version valid at `ts`.
    pub fn reconstruct_doc_at(&self, doc: txdb_base::DocId, ts: Timestamp) -> Result<Tree> {
        let v = self.store().version_at(doc, ts)?.ok_or(Error::NotValidAt(doc, ts))?;
        self.store().version_tree(doc, v)
    }

    /// `DocHistory(document, t1, t2)` — all versions valid in `[t1, t2)`,
    /// most recent first (§7.3.4). A version is "valid in the interval"
    /// when its validity interval overlaps it.
    pub fn doc_history(
        &self,
        doc: txdb_base::DocId,
        interval: Interval,
    ) -> Result<Vec<DocVersion>> {
        Ok(self.doc_history_counted(doc, interval)?.0)
    }

    /// `DocHistory` with the total number of deltas read (E9 metric).
    pub fn doc_history_counted(
        &self,
        doc: txdb_base::DocId,
        interval: Interval,
    ) -> Result<(Vec<DocVersion>, usize)> {
        let entries = self.store().versions(doc)?;
        // Content versions whose validity interval overlaps the request.
        let mut in_range: Vec<(VersionId, Timestamp)> = Vec::new();
        for e in &entries {
            if e.kind != VersionKind::Content {
                continue;
            }
            let end =
                entries.get(e.version.0 as usize + 1).map(|n| n.ts).unwrap_or(Timestamp::FOREVER);
            if Interval::new(e.ts, end).overlaps(interval) {
                in_range.push((e.version, e.ts));
            }
        }
        let Some(&(newest, _)) = in_range.last() else {
            return Ok((Vec::new(), 0));
        };
        // Reconstruct the newest once, then walk backwards one delta per
        // earlier version ("reconstructed the versions between t1 and t2
        // in the same way, using snapshots when possible"). The
        // materialized-version cache makes the walk cheaper still: each
        // target version is looked up before its deltas are read, so a
        // warm walk costs zero deltas, and every version materialized
        // here is offered back to the cache for later point queries.
        let (mut tree, mut deltas_read) = self.store().version_tree_counted(doc, newest)?;
        let mut out = Vec::with_capacity(in_range.len());
        let mut cursor = newest;
        for &(v, ts) in in_range.iter().rev() {
            // Seed from the cache when the target version is resident —
            // cheaper than reading the `cursor - v` deltas in between.
            if cursor > v {
                if let Some(cached) = self.store().cached_version(doc, v) {
                    tree = cached;
                    cursor = v;
                }
            }
            // Move the working tree from `cursor` down to `v`.
            while cursor > v {
                let entry = &entries[cursor.0 as usize];
                if entry.delta_rid.is_some() {
                    let delta = self
                        .store()
                        .delta(doc, cursor)?
                        .ok_or_else(|| Error::Corrupt("missing delta".into()))?;
                    delta.apply_backward(&mut tree)?;
                    deltas_read += 1;
                }
                cursor = VersionId(cursor.0 - 1);
            }
            self.store().cache_version(doc, v, &tree);
            out.push(DocVersion { version: v, ts, tree: tree.clone() });
        }
        Ok((out, deltas_read))
    }

    /// `DocHistory` over many documents at once, one document per worker
    /// of the scan pool (the store is multi-reader; no document's walk
    /// depends on another's). Results come back in input order.
    pub fn doc_histories(
        &self,
        docs: &[txdb_base::DocId],
        interval: Interval,
    ) -> Result<Vec<(txdb_base::DocId, Vec<DocVersion>)>> {
        super::parallel::parallel_map(docs, |&doc| {
            self.doc_history(doc, interval).map(|h| (doc, h))
        })
        .into_iter()
        .collect()
    }

    /// Warms the materialized-version cache for a batch of
    /// `(doc, version)` reconstruction targets on the scan worker pool.
    /// Query execution calls this before a multi-document tree scan so
    /// the per-row reconstructions that follow hit the cache. A no-op
    /// when the cache is disabled (there would be nowhere to keep the
    /// result). Unknown versions are skipped, not errors.
    pub fn prefetch_versions(&self, targets: &[(txdb_base::DocId, VersionId)]) {
        if self.store().vcache().is_disabled() || targets.is_empty() {
            return;
        }
        super::parallel::parallel_map(targets, |&(doc, v)| {
            let _ = self.store().version_tree_counted(doc, v);
        });
    }

    /// `ElementHistory(EID, t1, t2)` — all versions of the element valid in
    /// `[t1, t2)` (§7.3.5): DocHistory, then the subtree rooted at the EID
    /// is filtered out of each version. Consecutive document versions in
    /// which the element did not change are coalesced into one element
    /// version (an element version exists per *change* of the element).
    pub fn element_history(&self, eid: Eid, interval: Interval) -> Result<Vec<ElementVersion>> {
        Ok(self.element_history_counted(eid, interval)?.0)
    }

    /// `ElementHistory` with the number of deltas read (E9 metric).
    pub fn element_history_counted(
        &self,
        eid: Eid,
        interval: Interval,
    ) -> Result<(Vec<ElementVersion>, usize)> {
        let (versions, deltas_read) = self.doc_history_counted(eid.doc, interval)?;
        let mut out: Vec<ElementVersion> = Vec::new();
        // doc_history is newest-first; walk oldest-first to coalesce.
        let mut last_change_ts: Option<Timestamp> = None;
        for dv in versions.iter().rev() {
            let Some(node) = dv.tree.find_xid(eid.xid) else {
                last_change_ts = None;
                continue;
            };
            let changed_at = dv.tree.effective_ts(node);
            if last_change_ts == Some(changed_at) {
                continue; // unchanged since the previous doc version
            }
            last_change_ts = Some(changed_at);
            out.push(ElementVersion {
                teid: eid.at(dv.ts),
                version: dv.version,
                subtree: dv.tree.extract_subtree(node),
            });
        }
        out.reverse(); // newest first, like DocHistory
        Ok((out, deltas_read))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdb_base::DocId;
    use txdb_xml::serialize::to_string;

    fn ts(n: u64) -> Timestamp {
        Timestamp::from_micros(n * 1000)
    }

    fn iv(a: u64, b: u64) -> Interval {
        Interval::new(ts(a), ts(b))
    }

    /// doc with versions: v0@10 <a><p>1</p></a>, v1@20 p=2, v2@30 p=3.
    fn versioned_db() -> (Database, DocId) {
        let db = Database::in_memory();
        let doc = db.put("d", "<a><p>1</p></a>", ts(10)).unwrap().doc;
        db.put("d", "<a><p>2</p></a>", ts(20)).unwrap();
        db.put("d", "<a><p>3</p></a>", ts(30)).unwrap();
        (db, doc)
    }

    #[test]
    fn reconstruct_teid_subtree() {
        let (db, doc) = versioned_db();
        let cur = db.store().current_tree(doc).unwrap();
        let p = cur.iter().find(|&n| cur.node(n).name() == Some("p")).unwrap();
        let eid = Eid::new(doc, cur.node(p).xid);
        // Reconstruct the p element as of t=15 (version 0).
        let (sub, applied) = db.reconstruct_counted(eid.at(ts(15))).unwrap();
        assert_eq!(to_string(&sub), "<p>1</p>");
        assert_eq!(applied, 2, "two backward deltas from current");
        // Current version costs zero deltas.
        let (sub, applied) = db.reconstruct_counted(eid.at(ts(99))).unwrap();
        assert_eq!(to_string(&sub), "<p>3</p>");
        assert_eq!(applied, 0);
    }

    #[test]
    fn reconstruct_errors() {
        let (db, doc) = versioned_db();
        let eid = Eid::new(doc, txdb_base::Xid(1));
        assert!(db.reconstruct(eid.at(ts(5))).is_err(), "before creation");
        let bogus = Eid::new(doc, txdb_base::Xid(999));
        assert!(db.reconstruct(bogus.at(ts(15))).is_err(), "no such element");
    }

    #[test]
    fn doc_history_full_range_backwards() {
        let (db, doc) = versioned_db();
        let h = db.doc_history(doc, Interval::ALL).unwrap();
        assert_eq!(h.len(), 3);
        // Most recent first (§7.3.4).
        assert_eq!(h[0].version, VersionId(2));
        assert_eq!(h[2].version, VersionId(0));
        assert_eq!(to_string(&h[0].tree), "<a><p>3</p></a>");
        assert_eq!(to_string(&h[2].tree), "<a><p>1</p></a>");
    }

    #[test]
    fn doc_history_interval_selection() {
        let (db, doc) = versioned_db();
        // [15, 25) overlaps v0 ([10,20)) and v1 ([20,30)).
        let h = db.doc_history(doc, iv(15, 25)).unwrap();
        let vs: Vec<u32> = h.iter().map(|d| d.version.0).collect();
        assert_eq!(vs, vec![1, 0]);
        // [10, 11) → only v0.
        assert_eq!(db.doc_history(doc, iv(10, 11)).unwrap().len(), 1);
        // Empty interval → nothing.
        assert!(db.doc_history(doc, iv(15, 15)).unwrap().is_empty());
        // Before creation → nothing.
        assert!(db.doc_history(doc, iv(1, 9)).unwrap().is_empty());
    }

    #[test]
    fn doc_history_incremental_cost() {
        // Cache disabled: this test pins the *cold* §7.3.4 cost model.
        let db = crate::db::DbOptions::new().cache_bytes(0).open().unwrap();
        let doc = db.put("d", "<a><p>1</p></a>", ts(10)).unwrap().doc;
        db.put("d", "<a><p>2</p></a>", ts(20)).unwrap();
        db.put("d", "<a><p>3</p></a>", ts(30)).unwrap();
        // Full history from the current version: v2 costs 0, then one
        // delta per earlier version ⇒ 2 total.
        let (_, deltas) = db.doc_history_counted(doc, Interval::ALL).unwrap();
        assert_eq!(deltas, 2);
        // Only the oldest version: reconstruct backwards through 2 deltas.
        let (_, deltas) = db.doc_history_counted(doc, iv(10, 11)).unwrap();
        assert_eq!(deltas, 2);
    }

    #[test]
    fn warm_history_walk_costs_no_deltas() {
        let (db, doc) = versioned_db();
        let (cold, deltas) = db.doc_history_counted(doc, Interval::ALL).unwrap();
        assert_eq!(deltas, 2);
        // Every version materialized by the walk is now cached: the same
        // walk again reads nothing.
        let (warm, deltas) = db.doc_history_counted(doc, Interval::ALL).unwrap();
        assert_eq!(deltas, 0, "warm walk seeds every version from the cache");
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.version, w.version);
            assert_eq!(to_string(&c.tree), to_string(&w.tree));
        }
        // A point reconstruction of an old version is free too.
        let (_, applied) = db.store().version_tree_counted(doc, VersionId(0)).unwrap();
        assert_eq!(applied, 0);
        // ...and a write invalidates: the next walk pays again.
        db.put("d", "<a><p>4</p></a>", ts(40)).unwrap();
        let (_, deltas) = db.doc_history_counted(doc, iv(10, 11)).unwrap();
        assert!(deltas > 0, "cache invalidated by put");
    }

    #[test]
    fn doc_history_with_tombstone_gap() {
        let db = Database::in_memory();
        let doc = db.put("d", "<a>1</a>", ts(10)).unwrap().doc;
        db.delete("d", ts(20)).unwrap();
        db.put("d", "<a>2</a>", ts(30)).unwrap();
        let h = db.doc_history(doc, Interval::ALL).unwrap();
        assert_eq!(h.len(), 2, "tombstone contributes no version");
        assert_eq!(to_string(&h[0].tree), "<a>2</a>");
        assert_eq!(to_string(&h[1].tree), "<a>1</a>");
        // An interval inside the gap yields nothing.
        assert!(db.doc_history(doc, iv(22, 28)).unwrap().is_empty());
    }

    #[test]
    fn element_history_coalesces_unchanged() {
        let db = Database::in_memory();
        // name never changes; price changes twice.
        let doc = db.put("d", "<g><n>Napoli</n><p>15</p></g>", ts(10)).unwrap().doc;
        db.put("d", "<g><n>Napoli</n><p>18</p></g>", ts(20)).unwrap();
        db.put("d", "<g><n>Napoli</n><p>21</p></g>", ts(30)).unwrap();
        let cur = db.store().current_tree(doc).unwrap();
        let n_eid = {
            let n = cur.iter().find(|&x| cur.node(x).name() == Some("n")).unwrap();
            Eid::new(doc, cur.node(n).xid)
        };
        let p_eid = {
            let p = cur.iter().find(|&x| cur.node(x).name() == Some("p")).unwrap();
            Eid::new(doc, cur.node(p).xid)
        };
        let nh = db.element_history(n_eid, Interval::ALL).unwrap();
        assert_eq!(nh.len(), 1, "name never changed");
        assert_eq!(to_string(&nh[0].subtree), "<n>Napoli</n>");
        let ph = db.element_history(p_eid, Interval::ALL).unwrap();
        assert_eq!(ph.len(), 3, "price changed each version");
        assert_eq!(to_string(&ph[0].subtree), "<p>21</p>");
        assert_eq!(to_string(&ph[2].subtree), "<p>15</p>");
        // TEIDs carry the version commit timestamps, newest first.
        assert_eq!(ph[0].teid.ts, ts(30));
        assert_eq!(ph[2].teid.ts, ts(10));
    }

    #[test]
    fn element_history_element_absent_in_some_versions() {
        let db = Database::in_memory();
        let doc = db.put("d", "<g><a>x</a></g>", ts(10)).unwrap().doc;
        db.put("d", "<g></g>", ts(20)).unwrap();
        let t0 = db.store().version_tree(doc, VersionId(0)).unwrap();
        let a_eid = {
            let a = t0.iter().find(|&x| t0.node(x).name() == Some("a")).unwrap();
            Eid::new(doc, t0.node(a).xid)
        };
        let h = db.element_history(a_eid, Interval::ALL).unwrap();
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].version, VersionId(0));
        // Restricting to after the deletion yields nothing.
        let h = db.element_history(a_eid, iv(20, 100)).unwrap();
        assert!(h.is_empty());
    }

    #[test]
    fn snapshots_reduce_history_cost() {
        let db = crate::db::DbOptions::new().snapshot_every(4).open().unwrap();
        for i in 0..16u64 {
            db.put("d", &format!("<a><v>{i}</v></a>"), ts(10 + i)).unwrap();
        }
        let doc = db.store().doc_id("d").unwrap().unwrap();
        // Oldest version only: nearest snapshot after v0 is v4 ⇒ ≤ 4 deltas.
        let (h, deltas) = db.doc_history_counted(doc, iv(10, 11)).unwrap();
        assert_eq!(h.len(), 1);
        assert!(deltas <= 4, "snapshot bounded: {deltas}");
        assert_eq!(to_string(&h[0].tree), "<a><v>0</v></a>");
    }
}
