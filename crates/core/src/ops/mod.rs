//! The §6 operator implementations, grouped by the §7.3 algorithm that
//! executes them. Every operator is a method on [`crate::Database`].

pub mod diffop;
pub mod history;
pub mod lifetime;
pub mod parallel;
pub mod pattern;
pub mod versions;
