//! `CreTime` and `DelTime` (§7.3.6) — both strategies.
//!
//! The paper gives two ways to find an element's create time:
//!
//! 1. **Traverse the deltas backwards** from the version the TEID selects
//!    "until we find the delta where the element is introduced (note that
//!    no reconstruction is necessary)" — this is why the operators take a
//!    TEID rather than a bare EID: the timestamp tells the traversal where
//!    to start.
//! 2. **Use an additional index** mapping EIDs to create/delete timestamps
//!    (the [`txdb_index::eidindex::EidTimeIndex`]).
//!
//! `DelTime` mirrors it: if the document is deleted and the element
//! existed in the last version, the document's delete time is the answer;
//! otherwise traverse *forward* from the TEID's version until a delta
//! deletes the element — or probe the index. Experiment E5 measures the
//! crossover between the two strategies.

use txdb_base::{Error, Result, Teid, Timestamp};
use txdb_delta::EditOp;
use txdb_storage::repo::VersionKind;

use crate::db::Database;

/// Which §7.3.6 strategy to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LifetimeStrategy {
    /// Walk the delta chain (no reconstruction, no auxiliary index).
    Traverse,
    /// Probe the EID-time index.
    #[default]
    Index,
}

impl Database {
    /// `CreTime(TEID)` — the transaction time the element was created.
    pub fn cre_time(&self, teid: Teid, strategy: LifetimeStrategy) -> Result<Timestamp> {
        Ok(self.cre_time_counted(teid, strategy)?.0)
    }

    /// `CreTime` with the number of deltas read (0 for the index strategy).
    pub fn cre_time_counted(
        &self,
        teid: Teid,
        strategy: LifetimeStrategy,
    ) -> Result<(Timestamp, usize)> {
        match strategy {
            LifetimeStrategy::Index => {
                let idx = self
                    .indexes()
                    .eid_index()
                    .ok_or_else(|| Error::Unsupported("EID-time index disabled".into()))?;
                let lt = idx.lifetime(teid.eid)?.ok_or(Error::NoSuchElement(teid.eid))?;
                Ok((lt.created, 0))
            }
            LifetimeStrategy::Traverse => {
                let doc = teid.doc();
                let start = self
                    .store()
                    .version_at(doc, teid.ts)?
                    .ok_or(Error::NotValidAt(doc, teid.ts))?;
                let entries = self.store().versions(doc)?;
                let mut deltas_read = 0usize;
                // Walk backwards; the delta *into* version v tells whether
                // v introduced the element.
                let mut v = start;
                loop {
                    let entry = &entries[v.0 as usize];
                    match entry.delta_rid {
                        None => {
                            // v is the first (content) version of the doc or
                            // follows nothing — the element was created here.
                            return Ok((entry.ts, deltas_read));
                        }
                        Some(_) => {
                            let delta = self
                                .store()
                                .delta(doc, v)?
                                .ok_or_else(|| Error::Corrupt("missing delta".into()))?;
                            deltas_read += 1;
                            if delta_inserts(&delta, teid.xid()) {
                                return Ok((entry.ts, deltas_read));
                            }
                            // Continue to the previous content version.
                            let Some(prev) = entries[..v.0 as usize]
                                .iter()
                                .rev()
                                .find(|e| e.kind == VersionKind::Content)
                            else {
                                return Ok((entry.ts, deltas_read));
                            };
                            v = prev.version;
                        }
                    }
                }
            }
        }
    }

    /// `DelTime(TEID)` — the transaction time the element was deleted;
    /// [`Timestamp::FOREVER`] while it is still alive.
    pub fn del_time(&self, teid: Teid, strategy: LifetimeStrategy) -> Result<Timestamp> {
        Ok(self.del_time_counted(teid, strategy)?.0)
    }

    /// `DelTime` with the number of deltas read.
    pub fn del_time_counted(
        &self,
        teid: Teid,
        strategy: LifetimeStrategy,
    ) -> Result<(Timestamp, usize)> {
        match strategy {
            LifetimeStrategy::Index => {
                let idx = self
                    .indexes()
                    .eid_index()
                    .ok_or_else(|| Error::Unsupported("EID-time index disabled".into()))?;
                let lt = idx.lifetime(teid.eid)?.ok_or(Error::NoSuchElement(teid.eid))?;
                Ok((lt.deleted, 0))
            }
            LifetimeStrategy::Traverse => {
                let doc = teid.doc();
                let start = self
                    .store()
                    .version_at(doc, teid.ts)?
                    .ok_or(Error::NotValidAt(doc, teid.ts))?;
                let entries = self.store().versions(doc)?;
                let mut deltas_read = 0usize;
                // Traverse forwards from the version after `start`.
                for e in &entries[(start.0 as usize + 1)..] {
                    match e.kind {
                        // A purged entry has no delta to inspect; the
                        // traversal cannot see deletions it contained.
                        VersionKind::Purged => {}
                        VersionKind::Tombstone => {
                            // "If the document is deleted, and the element
                            // existed in the last version, the delete time
                            // of the document is the delete time of the
                            // element."
                            return Ok((e.ts, deltas_read));
                        }
                        VersionKind::Content => {
                            let delta = self
                                .store()
                                .delta(doc, e.version)?
                                .ok_or_else(|| Error::Corrupt("missing delta".into()))?;
                            deltas_read += 1;
                            if delta_deletes(&delta, teid.xid()) {
                                return Ok((e.ts, deltas_read));
                            }
                        }
                    }
                }
                Ok((Timestamp::FOREVER, deltas_read))
            }
        }
    }
}

/// Does the delta introduce `xid` (as an inserted subtree member)?
fn delta_inserts(delta: &txdb_delta::Delta, xid: txdb_base::Xid) -> bool {
    delta.ops.iter().any(|op| match op {
        EditOp::InsertSubtree { subtree, .. } => subtree.iter().any(|n| subtree.node(n).xid == xid),
        _ => false,
    })
}

/// Does the delta remove `xid` (as a deleted subtree member)?
fn delta_deletes(delta: &txdb_delta::Delta, xid: txdb_base::Xid) -> bool {
    delta.ops.iter().any(|op| match op {
        EditOp::DeleteSubtree { subtree, .. } => subtree.iter().any(|n| subtree.node(n).xid == xid),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdb_base::{DocId, Eid, VersionId, Xid};

    fn ts(n: u64) -> Timestamp {
        Timestamp::from_micros(n * 1000)
    }

    /// v0@10: <g><a/></g> ; v1@20: + <b/> ; v2@30: - <a/> ; v3@40: touch b.
    fn lifecycle_db() -> (Database, DocId, Eid, Eid) {
        let db = Database::in_memory();
        let doc = db.put("d", "<g><a/></g>", ts(10)).unwrap().doc;
        db.put("d", "<g><a/><b/></g>", ts(20)).unwrap();
        db.put("d", "<g><b/></g>", ts(30)).unwrap();
        db.put("d", "<g><b>touched</b></g>", ts(40)).unwrap();
        let t1 = db.store().version_tree(doc, VersionId(1)).unwrap();
        let a = t1.iter().find(|&n| t1.node(n).name() == Some("a")).unwrap();
        let b = t1.iter().find(|&n| t1.node(n).name() == Some("b")).unwrap();
        (db, doc, Eid::new(doc, t1.node(a).xid), Eid::new(doc, t1.node(b).xid))
    }

    #[test]
    fn cre_time_both_strategies_agree() {
        let (db, _, a, b) = lifecycle_db();
        for strat in [LifetimeStrategy::Traverse, LifetimeStrategy::Index] {
            assert_eq!(db.cre_time(a.at(ts(15)), strat).unwrap(), ts(10), "{strat:?}");
            assert_eq!(db.cre_time(b.at(ts(25)), strat).unwrap(), ts(20), "{strat:?}");
        }
    }

    #[test]
    fn del_time_both_strategies_agree() {
        let (db, _, a, b) = lifecycle_db();
        for strat in [LifetimeStrategy::Traverse, LifetimeStrategy::Index] {
            assert_eq!(db.del_time(a.at(ts(15)), strat).unwrap(), ts(30), "{strat:?}");
            assert_eq!(db.del_time(b.at(ts(25)), strat).unwrap(), Timestamp::FOREVER, "{strat:?}");
        }
    }

    #[test]
    fn traversal_cost_grows_with_age() {
        // CreTime of an old element probed from a recent version reads
        // many deltas; the index reads none. (The E5 crossover.)
        let db = Database::in_memory();
        let doc = db.put("d", "<g><old/></g>", ts(1)).unwrap().doc;
        for i in 2..=20u64 {
            db.put("d", &format!("<g><old/><x>{i}</x></g>"), ts(i)).unwrap();
        }
        let cur = db.store().current_tree(doc).unwrap();
        let old = cur.iter().find(|&n| cur.node(n).name() == Some("old")).unwrap();
        let eid = Eid::new(doc, cur.node(old).xid);
        let (t_trav, deltas) =
            db.cre_time_counted(eid.at(ts(20)), LifetimeStrategy::Traverse).unwrap();
        assert_eq!(t_trav, ts(1));
        assert!(deltas >= 19, "walked the whole chain: {deltas}");
        let (t_idx, zero) = db.cre_time_counted(eid.at(ts(20)), LifetimeStrategy::Index).unwrap();
        assert_eq!(t_idx, ts(1));
        assert_eq!(zero, 0);
    }

    #[test]
    fn doc_deletion_is_element_del_time() {
        let db = Database::in_memory();
        let doc = db.put("d", "<g><a/></g>", ts(10)).unwrap().doc;
        db.delete("d", ts(50)).unwrap();
        let t0 = db.store().version_tree(doc, VersionId(0)).unwrap();
        let a = t0.iter().find(|&n| t0.node(n).name() == Some("a")).unwrap();
        let eid = Eid::new(doc, t0.node(a).xid);
        for strat in [LifetimeStrategy::Traverse, LifetimeStrategy::Index] {
            assert_eq!(db.del_time(eid.at(ts(10)), strat).unwrap(), ts(50), "{strat:?}");
        }
    }

    #[test]
    fn unknown_element_errors() {
        let (db, doc, ..) = lifecycle_db();
        let bogus = Eid::new(doc, Xid(999));
        assert!(db.cre_time(bogus.at(ts(15)), LifetimeStrategy::Index).is_err());
        // Traversal with a timestamp where the doc doesn't exist:
        assert!(db.cre_time(bogus.at(ts(1)), LifetimeStrategy::Traverse).is_err());
    }

    #[test]
    fn traverse_from_creation_version_is_cheap() {
        // Probing at the element's own creation version reads few deltas.
        let (db, _, _, b) = lifecycle_db();
        let (t, deltas) = db.cre_time_counted(b.at(ts(20)), LifetimeStrategy::Traverse).unwrap();
        assert_eq!(t, ts(20));
        assert_eq!(deltas, 1, "the delta into v1 introduces b");
    }
}
