//! Small scoped worker pool for multi-document temporal scans.
//!
//! The store is single-writer/multi-reader ([`crate::Database`] is `Sync`),
//! so per-document work — the structural join of `TPatternScanAll`, the
//! backward walks of `DocHistory` over many documents, version prefetch —
//! parallelises trivially: no document's work depends on another's. This
//! module provides the one primitive they all share: an order-preserving
//! parallel map over a slice, executed on `std::thread::scope` workers with
//! a work-stealing index (no channels, no allocation per task beyond the
//! result slot).
//!
//! The pool is deliberately small ([`MAX_WORKERS`]): scans are memory-bound
//! (posting intersections, delta application) and the version cache shards
//! contend past a handful of readers.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Upper bound on worker threads for any parallel scan.
pub const MAX_WORKERS: usize = 4;

/// The number of workers a job of `n` independent items gets: bounded by
/// the machine, [`MAX_WORKERS`], and the job size itself.
pub fn workers_for(n: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    hw.min(MAX_WORKERS).min(n).max(1)
}

/// Order-preserving parallel map: applies `f` to every item of `items` on
/// up to [`MAX_WORKERS`] scoped threads and returns the results in input
/// order. Falls back to a plain sequential map when the job is too small
/// to be worth a thread (`items.len() < 2`) or the machine has one core.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = workers_for(n);
    if workers <= 1 || n < 2 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock() = Some(r);
            });
        }
    });
    slots.into_iter().map(|m| m.into_inner().expect("worker filled every claimed slot")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = parallel_map(&items, |&i| i * 2);
        assert_eq!(out, (0..257).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(&none, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn results_can_be_fallible() {
        let items = [1i32, -1, 2];
        let out = parallel_map(&items, |&i| if i < 0 { Err("negative") } else { Ok(i) });
        assert_eq!(out, vec![Ok(1), Err("negative"), Ok(2)]);
    }
}
