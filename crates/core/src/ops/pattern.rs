//! `PatternScan`, `TPatternScan` and `TPatternScanAll` (§7.3.1–7.3.2).
//!
//! The paper's algorithm, verbatim:
//!
//! > 1. For all words wᵢ in pattern, call Lᵢ = FTI_lookup(wᵢ).
//! > 2. Execute Join(L₁, …, Lₙ) with join attributes: document identifier,
//! >    relationship (e.g., isparentof or isascendantof).
//!
//! `TPatternScan` swaps in `FTI_lookup_T`; `TPatternScanAll` uses
//! `FTI_lookup_H` and adds **time** to the join attributes ("words in the
//! pattern valid at same time, which actually implies that this is a
//! temporal join").
//!
//! Per-pattern-node candidates are the same-element intersection of that
//! node's token posting lists (a pattern node constrains one element with
//! its tag and content words); the structural join then binds pattern
//! nodes top-down, deciding `isParentOf`/`isAscendantOf` from the
//! xid-paths carried in the postings — no document access at all, which is
//! the point of the paper's Q2 observation (aggregates over scans never
//! reconstruct).
//!
//! Every pattern node must carry at least one token (tag name or word);
//! the query planner routes wildcard-only patterns to the reconstruction
//! fallback instead (see `txdb-query`).

use std::collections::HashMap;

use txdb_base::{DocId, Eid, Error, Result, Timestamp, VersionId, Xid};
use txdb_index::fti::{OccKind, Posting, OPEN};
use txdb_storage::repo::VersionKind;
use txdb_xml::pattern::{PatternEdge, PatternNode, PatternTree};

use crate::db::Database;

/// One match produced by a (temporal) pattern scan: the elements bound to
/// the pattern nodes in pre-order, in one version of one document.
#[derive(Clone, Debug)]
pub struct Match {
    /// The document the match lives in.
    pub doc: DocId,
    /// The document version the match refers to.
    pub version: VersionId,
    /// The commit timestamp of that version (the TEID timestamp).
    pub ts: Timestamp,
    /// Bound elements, indexed like the pattern's pre-order nodes.
    pub nodes: Vec<Eid>,
}

impl Match {
    /// The TEIDs of the bound elements (§3.2: EID + timestamp).
    pub fn teids(&self) -> Vec<txdb_base::Teid> {
        self.nodes.iter().map(|e| e.at(self.ts)).collect()
    }

    /// TEIDs of only the projected pattern nodes.
    pub fn projected_teids(&self, pattern: &PatternTree) -> Vec<txdb_base::Teid> {
        pattern.projected().into_iter().map(|i| self.nodes[i].at(self.ts)).collect()
    }
}

/// Cost counters for a scan (experiment metrics).
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanStats {
    /// FTI lookups performed (one per pattern token).
    pub fti_lookups: usize,
    /// Total postings retrieved.
    pub postings: usize,
    /// Matches produced.
    pub matches: usize,
}

/// A candidate element for one pattern node, with the version range over
/// which all the node's tokens co-exist on the element. Paths are borrowed
/// from the postings (the FTI read guard outlives the scan).
#[derive(Clone, Copy, Debug)]
struct Cand<'a> {
    xid: Xid,
    path: &'a [Xid],
    from: u32,
    to: u32,
}

/// One document's share of the step-2 join, self-contained so it can run
/// on a pool worker: candidate slices per pattern node, the decoded delta
/// index, and (snapshot mode) the resolved target version.
struct DocJob<'c, 'p> {
    doc: DocId,
    per_node: Vec<&'c [Cand<'p>]>,
    entries: Vec<txdb_storage::repo::VersionEntry>,
    resolved: Option<VersionId>,
}

/// Flattened pattern: pre-order nodes with parent links.
struct FlatPattern<'p> {
    nodes: Vec<(&'p PatternNode, Option<usize>)>,
}

impl<'p> FlatPattern<'p> {
    fn new(pattern: &'p PatternTree) -> Self {
        let mut nodes = Vec::new();
        fn walk<'p>(
            n: &'p PatternNode,
            parent: Option<usize>,
            out: &mut Vec<(&'p PatternNode, Option<usize>)>,
        ) {
            let idx = out.len();
            out.push((n, parent));
            for c in &n.children {
                walk(c, Some(idx), out);
            }
        }
        walk(&pattern.root, None, &mut nodes);
        FlatPattern { nodes }
    }

    /// The FTI tokens of node `i`: `(token, kind)`.
    fn tokens(&self, i: usize) -> Vec<(String, OccKind)> {
        let node = self.nodes[i].0;
        let mut out = Vec::new();
        if let Some(tag) = &node.tag {
            out.push((tag.to_lowercase(), OccKind::Name));
        }
        for w in &node.words {
            out.push((w.clone(), OccKind::Word));
        }
        out
    }
}

/// Which lookup mode a scan runs in.
#[derive(Clone, Copy)]
enum Mode {
    Current,
    At(Timestamp),
    /// All versions whose commit time falls in the interval. `ALL` is the
    /// plain `TPatternScanAll`; narrower intervals implement the §8
    /// algebraic rewriting (temporal predicates pushed into the scan).
    All(txdb_base::Interval),
}

impl Database {
    /// `PatternScan(Δ, pattern)` — matches in the *current* versions of all
    /// undeleted documents (the non-temporal baseline operator of \[2\]).
    pub fn pattern_scan(&self, docs: Option<DocId>, pattern: &PatternTree) -> Result<Vec<Match>> {
        Ok(self.scan(docs, pattern, Mode::Current)?.0)
    }

    /// `PatternScan` with cost counters.
    pub fn pattern_scan_counted(
        &self,
        docs: Option<DocId>,
        pattern: &PatternTree,
    ) -> Result<(Vec<Match>, ScanStats)> {
        self.scan(docs, pattern, Mode::Current)
    }

    /// `TPatternScan(Δ, pattern, t)` — matches in the snapshot valid at
    /// `t` (§7.3.1). Output rows carry the TEID timestamp of the matched
    /// version.
    pub fn tpattern_scan(
        &self,
        docs: Option<DocId>,
        pattern: &PatternTree,
        t: Timestamp,
    ) -> Result<Vec<Match>> {
        Ok(self.scan(docs, pattern, Mode::At(t))?.0)
    }

    /// `TPatternScan` with cost counters.
    pub fn tpattern_scan_counted(
        &self,
        docs: Option<DocId>,
        pattern: &PatternTree,
        t: Timestamp,
    ) -> Result<(Vec<Match>, ScanStats)> {
        self.scan(docs, pattern, Mode::At(t))
    }

    /// `TPatternScanAll(Δ, pattern)` — matches across *all* versions
    /// (§7.3.2, the temporal multiway join). One [`Match`] is emitted per
    /// content version of the document within the joint validity range of
    /// the binding.
    pub fn tpattern_scan_all(
        &self,
        docs: Option<DocId>,
        pattern: &PatternTree,
    ) -> Result<Vec<Match>> {
        Ok(self.scan(docs, pattern, Mode::All(txdb_base::Interval::ALL))?.0)
    }

    /// `TPatternScanAll` restricted to versions committed within
    /// `interval` — the §8 "algebraic rewriting" target: the query planner
    /// lowers `TIME(R) >= t` / `TIME(R) < t` conjuncts into this interval
    /// instead of expanding every version and filtering afterwards.
    pub fn tpattern_scan_all_between(
        &self,
        docs: Option<DocId>,
        pattern: &PatternTree,
        interval: txdb_base::Interval,
    ) -> Result<Vec<Match>> {
        Ok(self.scan(docs, pattern, Mode::All(interval))?.0)
    }

    /// `TPatternScanAll` with cost counters.
    pub fn tpattern_scan_all_counted(
        &self,
        docs: Option<DocId>,
        pattern: &PatternTree,
    ) -> Result<(Vec<Match>, ScanStats)> {
        self.scan(docs, pattern, Mode::All(txdb_base::Interval::ALL))
    }

    /// [`Database::tpattern_scan_all_between`] with cost counters.
    pub fn tpattern_scan_all_between_counted(
        &self,
        docs: Option<DocId>,
        pattern: &PatternTree,
        interval: txdb_base::Interval,
    ) -> Result<(Vec<Match>, ScanStats)> {
        self.scan(docs, pattern, Mode::All(interval))
    }

    fn scan(
        &self,
        docs: Option<DocId>,
        pattern: &PatternTree,
        mode: Mode,
    ) -> Result<(Vec<Match>, ScanStats)> {
        let flat = FlatPattern::new(pattern);
        let mut stats = ScanStats::default();

        // Per-document version resolution for the snapshot mode is cached
        // across all lookups of this scan, as is the decoded delta index.
        let mut version_cache: HashMap<DocId, Option<VersionId>> = HashMap::new();
        let mut resolve = |db: &Database, doc: DocId, t: Timestamp| -> Option<VersionId> {
            *version_cache
                .entry(doc)
                .or_insert_with(|| db.store().version_at(doc, t).unwrap_or(None))
        };

        // Step 1: per-node candidates = same-element intersection of the
        // node's token posting lists. Nodes are processed most-selective
        // first (shortest posting list), and each processed node restricts
        // the documents later lookups touch — the join is per-document, so
        // documents absent from any node's candidates can never match.
        let fti = self.indexes().fti();
        for i in 0..flat.nodes.len() {
            if flat.tokens(i).is_empty() {
                return Err(Error::Unsupported(
                    "index pattern scan requires a tag or word on every pattern node".into(),
                ));
            }
        }
        let mut order: Vec<usize> = (0..flat.nodes.len()).collect();
        order.sort_by_key(|&i| {
            flat.tokens(i).iter().map(|(t, _)| fti.list_len(t)).min().unwrap_or(usize::MAX)
        });
        let mut allowed: Option<std::collections::HashSet<DocId>> =
            docs.map(|d| std::collections::HashSet::from([d]));
        let mut cands: Vec<HashMap<DocId, Vec<Cand<'_>>>> =
            (0..flat.nodes.len()).map(|_| HashMap::new()).collect();
        for &i in &order {
            // Within the node, start from the rarest token too.
            let mut tokens = flat.tokens(i);
            tokens.sort_by_key(|(t, _)| fti.list_len(t));
            let mut per_elem: HashMap<(DocId, Xid), Vec<Cand<'_>>> = HashMap::new();
            for (tok_idx, (tok, kind)) in tokens.iter().enumerate() {
                stats.fti_lookups += 1;
                let postings: Vec<&Posting> = match &mode {
                    Mode::Current => fti.lookup_scoped(tok, *kind, allowed.as_ref()),
                    Mode::At(t) => fti.lookup_t_scoped(tok, *kind, allowed.as_ref(), |doc| {
                        resolve(self, doc, *t)
                    }),
                    Mode::All(_) => fti.lookup_h_scoped(tok, *kind, allowed.as_ref()),
                };
                stats.postings += postings.len();
                let require_root = flat.nodes[i].0.at_root;
                if tok_idx == 0 {
                    for p in postings {
                        if require_root && p.path.len() != 1 {
                            continue;
                        }
                        per_elem.entry((p.doc, p.xid)).or_default().push(Cand {
                            xid: p.xid,
                            path: &p.path,
                            from: p.from_version,
                            to: p.to_version,
                        });
                    }
                } else {
                    // Intersect ranges with the accumulated candidates.
                    let mut next: HashMap<(DocId, Xid), Vec<Cand<'_>>> = HashMap::new();
                    for p in postings {
                        let Some(acc) = per_elem.get(&(p.doc, p.xid)) else { continue };
                        for c in acc {
                            let from = c.from.max(p.from_version);
                            let to = c.to.min(p.to_version);
                            if from < to {
                                // Paths agree within an overlapping range
                                // (both postings describe the same element
                                // in the same versions).
                                next.entry((p.doc, p.xid)).or_default().push(Cand {
                                    xid: c.xid,
                                    path: c.path,
                                    from,
                                    to,
                                });
                            }
                        }
                    }
                    per_elem = next;
                }
                if per_elem.is_empty() {
                    break;
                }
            }
            let mut by_doc: HashMap<DocId, Vec<Cand>> = HashMap::new();
            for ((doc, _), cs) in per_elem {
                by_doc.entry(doc).or_default().extend(cs);
            }
            allowed = Some(by_doc.keys().copied().collect());
            cands[i] = by_doc;
            if allowed.as_ref().is_some_and(|a| a.is_empty()) {
                break;
            }
        }

        // Step 2: multiway structural (and temporal) join, per document.
        let doc_set: Vec<DocId> = {
            // Documents that have candidates for every pattern node.
            let mut docs_iter = cands[0].keys().copied().collect::<Vec<_>>();
            docs_iter.retain(|d| cands.iter().all(|m| m.contains_key(d)));
            docs_iter.sort();
            docs_iter
        };

        // Per-document join inputs are materialized up front (delta-index
        // rows, snapshot resolution) so the join itself shares nothing
        // mutable — each document then joins on a pool worker.
        let mut jobs: Vec<DocJob<'_, '_>> = Vec::with_capacity(doc_set.len());
        for doc in doc_set {
            let per_node: Vec<&[Cand<'_>]> = cands.iter().map(|m| m[&doc].as_slice()).collect();
            let resolved = match &mode {
                Mode::At(t) => resolve(self, doc, *t),
                _ => None,
            };
            jobs.push(DocJob { doc, per_node, entries: self.store().versions(doc)?, resolved });
        }
        let per_doc = super::parallel::parallel_map(&jobs, |job| -> Result<Vec<Match>> {
            let mut local = Vec::new();
            let mut binding: Vec<&Cand<'_>> = Vec::with_capacity(flat.nodes.len());
            let doc = job.doc;
            join_rec(&flat, &job.per_node, doc, &mut binding, &mut |b| {
                // Joint validity range of the whole binding.
                let from = b.iter().map(|c| c.from).max().unwrap_or(0);
                let to = b.iter().map(|c| c.to).min().unwrap_or(OPEN);
                if from >= to {
                    return Ok(());
                }
                let nodes: Vec<Eid> = b.iter().map(|c| Eid::new(doc, c.xid)).collect();
                match &mode {
                    Mode::Current => {
                        // The binding is valid now; report the current
                        // content version.
                        if let Some(e) =
                            job.entries.iter().rev().find(|e| e.kind == VersionKind::Content)
                        {
                            local.push(Match { doc, version: e.version, ts: e.ts, nodes });
                        }
                        Ok(())
                    }
                    Mode::At(_) => {
                        let Some(v) = job.resolved else { return Ok(()) };
                        debug_assert!(from <= v.0 && v.0 < to);
                        let e = &job.entries[v.0 as usize];
                        local.push(Match { doc, version: v, ts: e.ts, nodes });
                        Ok(())
                    }
                    Mode::All(interval) => {
                        // Expand the joint range to content versions — the
                        // temporal join's "valid at same time" — keeping
                        // only versions committed inside the requested
                        // interval (§8 rewriting).
                        for e in job.entries.iter() {
                            if e.kind != VersionKind::Content {
                                continue;
                            }
                            if !interval.contains(e.ts) {
                                continue;
                            }
                            if e.version.0 >= from && e.version.0 < to {
                                local.push(Match {
                                    doc,
                                    version: e.version,
                                    ts: e.ts,
                                    nodes: nodes.clone(),
                                });
                            }
                        }
                        Ok(())
                    }
                }
            })?;
            Ok(local)
        });
        let mut out = Vec::new();
        for r in per_doc {
            out.extend(r?);
        }
        // Deterministic output order: doc, version, then bound xids —
        // independent of how documents were distributed over workers.
        out.sort_by(|a, b| (a.doc, a.version, &a.nodes).cmp(&(b.doc, b.version, &b.nodes)));
        stats.matches = out.len();
        Ok((out, stats))
    }
}

/// Recursive structural join: bind pattern nodes in pre-order; node `k`'s
/// candidate must satisfy the edge relationship with its pattern-parent's
/// binding and overlap it temporally.
fn join_rec<'c, 'p>(
    flat: &FlatPattern<'_>,
    per_node: &[&'c [Cand<'p>]],
    doc: DocId,
    binding: &mut Vec<&'c Cand<'p>>,
    emit: &mut dyn FnMut(&[&Cand<'p>]) -> Result<()>,
) -> Result<()> {
    let k = binding.len();
    if k == flat.nodes.len() {
        return emit(binding);
    }
    let (pnode, parent_idx) = (&flat.nodes[k].0, flat.nodes[k].1);
    for cand in per_node[k] {
        if let Some(pi) = parent_idx {
            let parent = binding[pi];
            let ok = match pnode.edge {
                PatternEdge::Child => {
                    cand.path.len() >= 2 && cand.path[cand.path.len() - 2] == parent.xid
                }
                PatternEdge::Descendant => {
                    cand.path.len() > 1 && cand.path[..cand.path.len() - 1].contains(&parent.xid)
                }
            };
            if !ok {
                continue;
            }
            // Temporal overlap with everything bound so far.
            if binding.iter().any(|b| cand.from >= b.to || b.from >= cand.to) {
                continue;
            }
        }
        let _ = doc;
        binding.push(cand);
        join_rec(flat, per_node, doc, binding, emit)?;
        binding.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdb_xml::pattern::PatternNode;

    fn ts(n: u64) -> Timestamp {
        Timestamp::from_micros(n * 1000)
    }

    /// The Figure 1 database: guide.com restaurant list over four states.
    fn figure1() -> Database {
        let db = Database::in_memory();
        // 01/01: Napoli 15
        db.put(
            "guide.com/restaurants",
            "<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>",
            ts(101),
        )
        .unwrap();
        // 15/01: + Akropolis 13
        db.put(
            "guide.com/restaurants",
            "<guide><restaurant><name>Napoli</name><price>15</price></restaurant>\
             <restaurant><name>Akropolis</name><price>13</price></restaurant></guide>",
            ts(115),
        )
        .unwrap();
        // 31/01: Akropolis gone, Napoli 18
        db.put(
            "guide.com/restaurants",
            "<guide><restaurant><name>Napoli</name><price>18</price></restaurant></guide>",
            ts(131),
        )
        .unwrap();
        db
    }

    fn restaurant_pattern() -> PatternTree {
        PatternTree::new(PatternNode::tag("restaurant").project())
    }

    #[test]
    fn q1_snapshot_restaurants_at_26_01() {
        // Q1: list all restaurants as of 26/01 → snapshot with 2 restaurants.
        let db = figure1();
        let m = db.tpattern_scan(None, &restaurant_pattern(), ts(126)).unwrap();
        assert_eq!(m.len(), 2);
        assert!(m.iter().all(|x| x.version == VersionId(1)));
        assert!(m.iter().all(|x| x.ts == ts(115)), "TEID ts = version commit time");
    }

    #[test]
    fn snapshot_before_creation_is_empty() {
        let db = figure1();
        let m = db.tpattern_scan(None, &restaurant_pattern(), ts(50)).unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn current_scan_sees_only_latest() {
        let db = figure1();
        let m = db.pattern_scan(None, &restaurant_pattern()).unwrap();
        assert_eq!(m.len(), 1, "only Napoli remains");
        assert_eq!(m[0].version, VersionId(2));
    }

    #[test]
    fn q3_price_history_of_napoli() {
        // Q3: EVERY + name=Napoli → all versions of the Napoli restaurant.
        let db = figure1();
        let pattern = PatternTree::new(
            PatternNode::tag("restaurant").project().child(PatternNode::tag("name").word("napoli")),
        );
        let m = db.tpattern_scan_all(None, &pattern).unwrap();
        // Napoli exists in versions 0, 1, 2.
        assert_eq!(m.len(), 3);
        let versions: Vec<u32> = m.iter().map(|x| x.version.0).collect();
        assert_eq!(versions, vec![0, 1, 2]);
        // Akropolis appears in exactly one version.
        let pattern = PatternTree::new(
            PatternNode::tag("restaurant")
                .project()
                .child(PatternNode::tag("name").word("akropolis")),
        );
        let m = db.tpattern_scan_all(None, &pattern).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].version, VersionId(1));
    }

    #[test]
    fn structural_join_parent_vs_ancestor() {
        let db = Database::in_memory();
        db.put("d", "<a><b><c>deep</c></b><c>shallow</c></a>", ts(1)).unwrap();
        // a isParentOf c → only the shallow c.
        let p = PatternTree::new(PatternNode::tag("a").child(PatternNode::tag("c").project()));
        assert_eq!(db.pattern_scan(None, &p).unwrap().len(), 1);
        // a isAscendantOf c → both.
        let p = PatternTree::new(PatternNode::tag("a").descendant(PatternNode::tag("c").project()));
        assert_eq!(db.pattern_scan(None, &p).unwrap().len(), 2);
    }

    #[test]
    fn word_and_tag_conjunction_same_element() {
        let db = Database::in_memory();
        db.put("d", "<g><name>Napoli</name><city>Napoli</city></g>", ts(1)).unwrap();
        let p = PatternTree::new(PatternNode::tag("name").word("napoli"));
        assert_eq!(db.pattern_scan(None, &p).unwrap().len(), 1);
        let p = PatternTree::new(PatternNode::tag("city").word("napoli"));
        assert_eq!(db.pattern_scan(None, &p).unwrap().len(), 1);
    }

    #[test]
    fn doc_filter_restricts() {
        let db = Database::in_memory();
        let d1 = db.put("one", "<g><r><n>X</n></r></g>", ts(1)).unwrap().doc;
        db.put("two", "<g><r><n>X</n></r></g>", ts(2)).unwrap();
        let p = PatternTree::new(PatternNode::tag("r"));
        assert_eq!(db.pattern_scan(None, &p).unwrap().len(), 2);
        assert_eq!(db.pattern_scan(Some(d1), &p).unwrap().len(), 1);
    }

    #[test]
    fn deleted_doc_excluded_from_current_but_not_history() {
        let db = figure1();
        db.delete("guide.com/restaurants", ts(140)).unwrap();
        assert!(db.pattern_scan(None, &restaurant_pattern()).unwrap().is_empty());
        // Snapshot before deletion still works.
        assert_eq!(db.tpattern_scan(None, &restaurant_pattern(), ts(126)).unwrap().len(), 2);
        // And inside the tombstone gap, nothing.
        assert!(db.tpattern_scan(None, &restaurant_pattern(), ts(150)).unwrap().is_empty());
    }

    #[test]
    fn temporal_join_rejects_disjoint_ranges() {
        // An element whose word appears only in v0 and a sibling created in
        // v1 never co-occur.
        let db = Database::in_memory();
        db.put("d", "<g><a>early</a></g>", ts(1)).unwrap();
        db.put("d", "<g><a>late</a><b>other</b></g>", ts(2)).unwrap();
        let p = PatternTree::new(
            PatternNode::tag("g")
                .child(PatternNode::tag("a").word("early"))
                .child(PatternNode::tag("b")),
        );
        assert!(db.tpattern_scan_all(None, &p).unwrap().is_empty());
        // But "late" and b co-exist in v1.
        let p = PatternTree::new(
            PatternNode::tag("g")
                .child(PatternNode::tag("a").word("late"))
                .child(PatternNode::tag("b")),
        );
        let m = db.tpattern_scan_all(None, &p).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].version, VersionId(1));
    }

    #[test]
    fn stats_counters_populated() {
        let db = figure1();
        let p = PatternTree::new(
            PatternNode::tag("restaurant").child(PatternNode::tag("name").word("napoli")),
        );
        let (m, stats) = db.tpattern_scan_counted(None, &p, ts(126)).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(stats.fti_lookups, 3, "restaurant, name, napoli");
        assert!(stats.postings >= 3);
        assert_eq!(stats.matches, 1);
    }

    #[test]
    fn unconstrained_node_rejected() {
        let db = figure1();
        let p = PatternTree::new(PatternNode::any());
        assert!(matches!(db.pattern_scan(None, &p), Err(Error::Unsupported(_))));
    }

    #[test]
    fn parallel_multi_doc_scan_is_deterministic() {
        // Enough documents (and versions) that the per-document join
        // actually fans out over the worker pool.
        let db = Database::in_memory();
        for i in 0..40u64 {
            let name = format!("doc{i}");
            db.put(&name, &format!("<g><r><n>shared</n><p>{i}</p></r></g>"), ts(i + 1)).unwrap();
            db.put(&name, &format!("<g><r><n>shared</n><p>{}</p></r></g>", i + 100), ts(i + 100))
                .unwrap();
        }
        let p = PatternTree::new(
            PatternNode::tag("r").project().child(PatternNode::tag("n").word("shared")),
        );
        let all = db.tpattern_scan_all(None, &p).unwrap();
        assert_eq!(all.len(), 80, "two versions of every document match");
        let again = db.tpattern_scan_all(None, &p).unwrap();
        let key = |m: &Match| (m.doc, m.version, m.nodes.clone());
        assert_eq!(
            all.iter().map(key).collect::<Vec<_>>(),
            again.iter().map(key).collect::<Vec<_>>(),
            "worker scheduling must not leak into output order"
        );
        let mut sorted = all.iter().map(key).collect::<Vec<_>>();
        sorted.sort();
        assert_eq!(all.iter().map(key).collect::<Vec<_>>(), sorted);
        // The snapshot mode agrees with a per-document scan.
        let at = db.tpattern_scan(None, &p, ts(50)).unwrap();
        assert_eq!(at.len(), 40);
    }

    #[test]
    fn match_teids_projection() {
        let db = figure1();
        let pattern = PatternTree::new(
            PatternNode::tag("restaurant").child(PatternNode::tag("name").word("napoli").project()),
        );
        let m = db.tpattern_scan(None, &pattern, ts(126)).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].teids().len(), 2);
        assert_eq!(m[0].projected_teids(&pattern).len(), 1);
    }
}
