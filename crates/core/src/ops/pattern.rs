//! `PatternScan`, `TPatternScan` and `TPatternScanAll` (§7.3.1–7.3.2).
//!
//! The paper's algorithm, verbatim:
//!
//! > 1. For all words wᵢ in pattern, call Lᵢ = FTI_lookup(wᵢ).
//! > 2. Execute Join(L₁, …, Lₙ) with join attributes: document identifier,
//! >    relationship (e.g., isparentof or isascendantof).
//!
//! `TPatternScan` swaps in `FTI_lookup_T`; `TPatternScanAll` uses
//! `FTI_lookup_H` and adds **time** to the join attributes ("words in the
//! pattern valid at same time, which actually implies that this is a
//! temporal join").
//!
//! Per-pattern-node candidates are the same-element intersection of that
//! node's token posting lists (a pattern node constrains one element with
//! its tag and content words); the structural join then binds pattern
//! nodes top-down, deciding `isParentOf`/`isAscendantOf` from the
//! xid-paths carried in the postings — no document access at all, which is
//! the point of the paper's Q2 observation (aggregates over scans never
//! reconstruct).
//!
//! Every pattern node must carry at least one token (tag name or word);
//! the query planner routes wildcard-only patterns to the reconstruction
//! fallback instead (see `txdb-query`).

use std::collections::HashMap;

use txdb_base::{DocId, Eid, Error, Result, Timestamp, VersionId, Xid};
use txdb_index::fti::{OccKind, Posting, OPEN};
use txdb_storage::repo::VersionKind;
use txdb_xml::pattern::{PatternEdge, PatternNode, PatternTree};

use crate::db::Database;

/// One match produced by a (temporal) pattern scan: the elements bound to
/// the pattern nodes in pre-order, in one version of one document.
#[derive(Clone, Debug)]
pub struct Match {
    /// The document the match lives in.
    pub doc: DocId,
    /// The document version the match refers to.
    pub version: VersionId,
    /// The commit timestamp of that version (the TEID timestamp).
    pub ts: Timestamp,
    /// Bound elements, indexed like the pattern's pre-order nodes.
    pub nodes: Vec<Eid>,
}

impl Match {
    /// The TEIDs of the bound elements (§3.2: EID + timestamp).
    pub fn teids(&self) -> Vec<txdb_base::Teid> {
        self.nodes.iter().map(|e| e.at(self.ts)).collect()
    }

    /// TEIDs of only the projected pattern nodes.
    pub fn projected_teids(&self, pattern: &PatternTree) -> Vec<txdb_base::Teid> {
        pattern.projected().into_iter().map(|i| self.nodes[i].at(self.ts)).collect()
    }
}

/// Cost counters for a scan (experiment metrics).
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanStats {
    /// FTI lookups performed (one per pattern token).
    pub fti_lookups: usize,
    /// Total postings retrieved.
    pub postings: usize,
    /// Matches produced.
    pub matches: usize,
}

/// A candidate element for one pattern node, with the version range over
/// which all the node's tokens co-exist on the element. Paths are borrowed
/// from the postings (the FTI read guard outlives the scan).
#[derive(Clone, Copy, Debug)]
struct Cand<'a> {
    xid: Xid,
    path: &'a [Xid],
    from: u32,
    to: u32,
}

/// One document's share of the step-2 join, self-contained so it can run
/// on a pool worker: candidate slices per pattern node, the decoded delta
/// index, and (snapshot mode) the resolved target version.
struct DocJob<'c, 'p> {
    doc: DocId,
    per_node: Vec<&'c [Cand<'p>]>,
    entries: Vec<txdb_storage::repo::VersionEntry>,
    resolved: Option<VersionId>,
}

/// Flattened pattern: pre-order nodes with parent links.
struct FlatPattern<'p> {
    nodes: Vec<(&'p PatternNode, Option<usize>)>,
}

impl<'p> FlatPattern<'p> {
    fn new(pattern: &'p PatternTree) -> Self {
        let mut nodes = Vec::new();
        fn walk<'p>(
            n: &'p PatternNode,
            parent: Option<usize>,
            out: &mut Vec<(&'p PatternNode, Option<usize>)>,
        ) {
            let idx = out.len();
            out.push((n, parent));
            for c in &n.children {
                walk(c, Some(idx), out);
            }
        }
        walk(&pattern.root, None, &mut nodes);
        FlatPattern { nodes }
    }

    /// The FTI tokens of node `i`: `(token, kind)`.
    fn tokens(&self, i: usize) -> Vec<(String, OccKind)> {
        let node = self.nodes[i].0;
        let mut out = Vec::new();
        if let Some(tag) = &node.tag {
            out.push((tag.to_lowercase(), OccKind::Name));
        }
        for w in &node.words {
            out.push((w.clone(), OccKind::Word));
        }
        out
    }
}

/// Which lookup mode a scan runs in.
#[derive(Clone, Copy)]
enum Mode {
    Current,
    At(Timestamp),
    /// All versions whose commit time falls in the interval. `ALL` is the
    /// plain `TPatternScanAll`; narrower intervals implement the §8
    /// algebraic rewriting (temporal predicates pushed into the scan).
    All(txdb_base::Interval),
}

impl Database {
    /// `PatternScan(Δ, pattern)` — matches in the *current* versions of all
    /// undeleted documents (the non-temporal baseline operator of \[2\]).
    pub fn pattern_scan(&self, docs: Option<DocId>, pattern: &PatternTree) -> Result<Vec<Match>> {
        Ok(self.scan(docs, pattern, Mode::Current)?.0)
    }

    /// `PatternScan` with cost counters.
    pub fn pattern_scan_counted(
        &self,
        docs: Option<DocId>,
        pattern: &PatternTree,
    ) -> Result<(Vec<Match>, ScanStats)> {
        self.scan(docs, pattern, Mode::Current)
    }

    /// `TPatternScan(Δ, pattern, t)` — matches in the snapshot valid at
    /// `t` (§7.3.1). Output rows carry the TEID timestamp of the matched
    /// version.
    pub fn tpattern_scan(
        &self,
        docs: Option<DocId>,
        pattern: &PatternTree,
        t: Timestamp,
    ) -> Result<Vec<Match>> {
        Ok(self.scan(docs, pattern, Mode::At(t))?.0)
    }

    /// `TPatternScan` with cost counters.
    pub fn tpattern_scan_counted(
        &self,
        docs: Option<DocId>,
        pattern: &PatternTree,
        t: Timestamp,
    ) -> Result<(Vec<Match>, ScanStats)> {
        self.scan(docs, pattern, Mode::At(t))
    }

    /// `TPatternScanAll(Δ, pattern)` — matches across *all* versions
    /// (§7.3.2, the temporal multiway join). One [`Match`] is emitted per
    /// content version of the document within the joint validity range of
    /// the binding.
    pub fn tpattern_scan_all(
        &self,
        docs: Option<DocId>,
        pattern: &PatternTree,
    ) -> Result<Vec<Match>> {
        Ok(self.scan(docs, pattern, Mode::All(txdb_base::Interval::ALL))?.0)
    }

    /// `TPatternScanAll` restricted to versions committed within
    /// `interval` — the §8 "algebraic rewriting" target: the query planner
    /// lowers `TIME(R) >= t` / `TIME(R) < t` conjuncts into this interval
    /// instead of expanding every version and filtering afterwards.
    pub fn tpattern_scan_all_between(
        &self,
        docs: Option<DocId>,
        pattern: &PatternTree,
        interval: txdb_base::Interval,
    ) -> Result<Vec<Match>> {
        Ok(self.scan(docs, pattern, Mode::All(interval))?.0)
    }

    /// `TPatternScanAll` with cost counters.
    pub fn tpattern_scan_all_counted(
        &self,
        docs: Option<DocId>,
        pattern: &PatternTree,
    ) -> Result<(Vec<Match>, ScanStats)> {
        self.scan(docs, pattern, Mode::All(txdb_base::Interval::ALL))
    }

    /// [`Database::tpattern_scan_all_between`] with cost counters.
    pub fn tpattern_scan_all_between_counted(
        &self,
        docs: Option<DocId>,
        pattern: &PatternTree,
        interval: txdb_base::Interval,
    ) -> Result<(Vec<Match>, ScanStats)> {
        self.scan(docs, pattern, Mode::All(interval))
    }

    /// Streaming [`Database::pattern_scan`]: a [`MatchCursor`] that pulls
    /// one match at a time instead of materializing the result set.
    pub fn pattern_cursor(
        &self,
        docs: Option<DocId>,
        pattern: &PatternTree,
    ) -> Result<MatchCursor<'_>> {
        MatchCursor::new(self, docs, pattern, Mode::Current)
    }

    /// Streaming [`Database::tpattern_scan`].
    pub fn tpattern_cursor(
        &self,
        docs: Option<DocId>,
        pattern: &PatternTree,
        t: Timestamp,
    ) -> Result<MatchCursor<'_>> {
        MatchCursor::new(self, docs, pattern, Mode::At(t))
    }

    /// Streaming [`Database::tpattern_scan_all_between`].
    pub fn tpattern_cursor_all_between(
        &self,
        docs: Option<DocId>,
        pattern: &PatternTree,
        interval: txdb_base::Interval,
    ) -> Result<MatchCursor<'_>> {
        MatchCursor::new(self, docs, pattern, Mode::All(interval))
    }

    fn scan(
        &self,
        docs: Option<DocId>,
        pattern: &PatternTree,
        mode: Mode,
    ) -> Result<(Vec<Match>, ScanStats)> {
        let flat = FlatPattern::new(pattern);
        let mut stats = ScanStats::default();

        let fti = self.indexes().fti();
        let mut set = collect_candidates(self, &fti, &flat, docs, mode, &mut stats)?;
        let doc_set = set.doc_set();
        let cands = std::mem::take(&mut set.cands);

        // Per-document join inputs are materialized up front (delta-index
        // rows, snapshot resolution) so the join itself shares nothing
        // mutable — each document then joins on a pool worker.
        let mut jobs: Vec<DocJob<'_, '_>> = Vec::with_capacity(doc_set.len());
        for doc in doc_set {
            let per_node: Vec<&[Cand<'_>]> = cands.iter().map(|m| m[&doc].as_slice()).collect();
            let resolved = match &mode {
                Mode::At(t) => set.resolve(self, doc, *t),
                _ => None,
            };
            jobs.push(DocJob { doc, per_node, entries: self.store().versions(doc)?, resolved });
        }
        let per_doc = super::parallel::parallel_map(&jobs, |job| -> Result<Vec<Match>> {
            let mut local = Vec::new();
            let mut binding: Vec<&Cand<'_>> = Vec::with_capacity(flat.nodes.len());
            let doc = job.doc;
            join_rec(&flat, &job.per_node, doc, &mut binding, &mut |b| {
                // Joint validity range of the whole binding.
                let from = b.iter().map(|c| c.from).max().unwrap_or(0);
                let to = b.iter().map(|c| c.to).min().unwrap_or(OPEN);
                if from >= to {
                    return Ok(());
                }
                let nodes: Vec<Eid> = b.iter().map(|c| Eid::new(doc, c.xid)).collect();
                match &mode {
                    Mode::Current => {
                        // The binding is valid now; report the current
                        // content version.
                        if let Some(e) =
                            job.entries.iter().rev().find(|e| e.kind == VersionKind::Content)
                        {
                            local.push(Match { doc, version: e.version, ts: e.ts, nodes });
                        }
                        Ok(())
                    }
                    Mode::At(_) => {
                        let Some(v) = job.resolved else { return Ok(()) };
                        debug_assert!(from <= v.0 && v.0 < to);
                        let e = &job.entries[v.0 as usize];
                        local.push(Match { doc, version: v, ts: e.ts, nodes });
                        Ok(())
                    }
                    Mode::All(interval) => {
                        // Expand the joint range to content versions — the
                        // temporal join's "valid at same time" — keeping
                        // only versions committed inside the requested
                        // interval (§8 rewriting).
                        for e in job.entries.iter() {
                            if e.kind != VersionKind::Content {
                                continue;
                            }
                            if !interval.contains(e.ts) {
                                continue;
                            }
                            if e.version.0 >= from && e.version.0 < to {
                                local.push(Match {
                                    doc,
                                    version: e.version,
                                    ts: e.ts,
                                    nodes: nodes.clone(),
                                });
                            }
                        }
                        Ok(())
                    }
                }
            })?;
            Ok(local)
        });
        let mut out = Vec::new();
        for r in per_doc {
            out.extend(r?);
        }
        // Deterministic output order: doc, version, then bound xids —
        // independent of how documents were distributed over workers.
        out.sort_by(|a, b| (a.doc, a.version, &a.nodes).cmp(&(b.doc, b.version, &b.nodes)));
        stats.matches = out.len();
        Ok((out, stats))
    }
}

/// Step-1 output: per-pattern-node candidate elements grouped by document,
/// plus the snapshot-version resolutions cached along the way.
struct CandidateSet<'g> {
    cands: Vec<HashMap<DocId, Vec<Cand<'g>>>>,
    version_cache: HashMap<DocId, Option<VersionId>>,
}

impl<'g> CandidateSet<'g> {
    /// Documents holding candidates for *every* pattern node, ascending.
    fn doc_set(&self) -> Vec<DocId> {
        let Some(first) = self.cands.first() else { return Vec::new() };
        let mut docs: Vec<DocId> = first.keys().copied().collect();
        docs.retain(|d| self.cands.iter().all(|m| m.contains_key(d)));
        docs.sort();
        docs
    }

    fn resolve(&mut self, db: &Database, doc: DocId, t: Timestamp) -> Option<VersionId> {
        *self
            .version_cache
            .entry(doc)
            .or_insert_with(|| db.store().version_at(doc, t).unwrap_or(None))
    }
}

/// Step 1 of the scan algorithm: per-node candidates = same-element
/// intersection of the node's token posting lists. Nodes are processed
/// most-selective first (shortest posting list), and each processed node
/// restricts the documents later lookups touch — the join is per-document,
/// so documents absent from any node's candidates can never match.
/// Postings are pulled lazily off the FTI cursors; the intersection never
/// materializes a posting `Vec` per token.
fn collect_candidates<'g>(
    db: &Database,
    fti: &'g txdb_index::FullTextIndex,
    flat: &FlatPattern<'_>,
    docs: Option<DocId>,
    mode: Mode,
    stats: &mut ScanStats,
) -> Result<CandidateSet<'g>> {
    for i in 0..flat.nodes.len() {
        if flat.tokens(i).is_empty() {
            return Err(Error::Unsupported(
                "index pattern scan requires a tag or word on every pattern node".into(),
            ));
        }
    }

    // Per-document version resolution for the snapshot mode is cached
    // across all lookups of this scan.
    let mut version_cache: HashMap<DocId, Option<VersionId>> = HashMap::new();
    let mut resolve = |doc: DocId, t: Timestamp| -> Option<VersionId> {
        *version_cache.entry(doc).or_insert_with(|| db.store().version_at(doc, t).unwrap_or(None))
    };

    let mut order: Vec<usize> = (0..flat.nodes.len()).collect();
    order.sort_by_key(|&i| {
        flat.tokens(i).iter().map(|(t, _)| fti.list_len(t)).min().unwrap_or(usize::MAX)
    });
    let mut allowed: Option<std::collections::HashSet<DocId>> =
        docs.map(|d| std::collections::HashSet::from([d]));
    let mut cands: Vec<HashMap<DocId, Vec<Cand<'g>>>> =
        (0..flat.nodes.len()).map(|_| HashMap::new()).collect();
    for &i in &order {
        // Within the node, start from the rarest token too.
        let mut tokens = flat.tokens(i);
        tokens.sort_by_key(|(t, _)| fti.list_len(t));
        let mut per_elem: HashMap<(DocId, Xid), Vec<Cand<'g>>> = HashMap::new();
        for (tok_idx, (tok, kind)) in tokens.iter().enumerate() {
            stats.fti_lookups += 1;
            let postings: Box<dyn Iterator<Item = &'g Posting> + '_> = match &mode {
                Mode::Current => Box::new(fti.open_cursor(tok, *kind, allowed.as_ref())),
                Mode::At(t) => Box::new(fti.snapshot_cursor(tok, *kind, allowed.as_ref(), {
                    let resolve = &mut resolve;
                    move |doc| resolve(doc, *t)
                })),
                Mode::All(_) => Box::new(fti.history_cursor(tok, *kind, allowed.as_ref())),
            };
            let require_root = flat.nodes[i].0.at_root;
            if tok_idx == 0 {
                for p in postings {
                    stats.postings += 1;
                    if require_root && p.path.len() != 1 {
                        continue;
                    }
                    per_elem.entry((p.doc, p.xid)).or_default().push(Cand {
                        xid: p.xid,
                        path: &p.path,
                        from: p.from_version,
                        to: p.to_version,
                    });
                }
            } else {
                // Intersect ranges with the accumulated candidates.
                let mut next: HashMap<(DocId, Xid), Vec<Cand<'g>>> = HashMap::new();
                for p in postings {
                    stats.postings += 1;
                    let Some(acc) = per_elem.get(&(p.doc, p.xid)) else { continue };
                    for c in acc {
                        let from = c.from.max(p.from_version);
                        let to = c.to.min(p.to_version);
                        if from < to {
                            // Paths agree within an overlapping range
                            // (both postings describe the same element
                            // in the same versions).
                            next.entry((p.doc, p.xid)).or_default().push(Cand {
                                xid: c.xid,
                                path: c.path,
                                from,
                                to,
                            });
                        }
                    }
                }
                per_elem = next;
            }
            if per_elem.is_empty() {
                break;
            }
        }
        let mut by_doc: HashMap<DocId, Vec<Cand<'g>>> = HashMap::new();
        for ((doc, _), cs) in per_elem {
            by_doc.entry(doc).or_default().extend(cs);
        }
        allowed = Some(by_doc.keys().copied().collect());
        cands[i] = by_doc;
        if allowed.as_ref().is_some_and(|a| a.is_empty()) {
            break;
        }
    }
    Ok(CandidateSet { cands, version_cache })
}

/// Owned form of [`Cand`]: candidate data cloned out of the postings so a
/// long-lived cursor never holds the FTI read guard (which would block
/// index maintenance for the cursor's whole lifetime).
struct OwnedCand {
    xid: Xid,
    path: Box<[Xid]>,
    from: u32,
    to: u32,
}

/// One complete pattern binding in one document: the bound elements in
/// pattern pre-order and the joint version-validity range.
struct Binding {
    nodes: Vec<Eid>,
    from: u32,
    to: u32,
}

/// Per-document iteration state of a [`MatchCursor`]: the document's
/// structural join has run (its bindings are small — one entry per match
/// skeleton, not per version) and matches are now enumerated lazily.
struct DocState {
    doc: DocId,
    bindings: Vec<Binding>,
    entries: Vec<txdb_storage::repo::VersionEntry>,
    /// Snapshot mode: the version valid at the requested time.
    resolved: Option<VersionId>,
    /// Current mode: the latest content version, if any.
    current: Option<(VersionId, Timestamp)>,
    entry_idx: usize,
    bind_idx: usize,
}

/// Streaming pattern scan: pulls [`Match`]es one at a time in the same
/// `(doc, version, nodes)` order the materializing scan sorts into.
///
/// Construction runs step 1 (the FTI candidate intersection) and clones
/// the surviving candidates to owned storage — bounded by pattern
/// selectivity, not by result size — then drops the FTI read guard. The
/// per-document structural join and the version expansion of
/// `TPatternScanAll` run lazily as the consumer pulls, so an early-exit
/// consumer (a `LIMIT` node) never pays for unvisited documents or
/// versions.
pub struct MatchCursor<'db> {
    db: &'db Database,
    pattern: PatternTree,
    mode: Mode,
    stats: ScanStats,
    docs: Vec<DocId>,
    cands: Vec<HashMap<DocId, Vec<OwnedCand>>>,
    version_cache: HashMap<DocId, Option<VersionId>>,
    doc_idx: usize,
    cur: Option<DocState>,
}

impl<'db> MatchCursor<'db> {
    fn new(
        db: &'db Database,
        docs: Option<DocId>,
        pattern: &PatternTree,
        mode: Mode,
    ) -> Result<Self> {
        let flat = FlatPattern::new(pattern);
        let mut stats = ScanStats::default();
        let fti = db.indexes().fti();
        let set = collect_candidates(db, &fti, &flat, docs, mode, &mut stats)?;
        let doc_list = set.doc_set();
        let keep: std::collections::HashSet<DocId> = doc_list.iter().copied().collect();
        // Only candidates of documents that survived every node are cloned.
        let cands: Vec<HashMap<DocId, Vec<OwnedCand>>> = set
            .cands
            .iter()
            .map(|m| {
                m.iter()
                    .filter(|(d, _)| keep.contains(d))
                    .map(|(d, cs)| {
                        let owned = cs
                            .iter()
                            .map(|c| OwnedCand {
                                xid: c.xid,
                                path: c.path.into(),
                                from: c.from,
                                to: c.to,
                            })
                            .collect();
                        (*d, owned)
                    })
                    .collect()
            })
            .collect();
        let version_cache = set.version_cache;
        drop(fti);
        Ok(MatchCursor {
            db,
            pattern: pattern.clone(),
            mode,
            stats,
            docs: doc_list,
            cands,
            version_cache,
            doc_idx: 0,
            cur: None,
        })
    }

    /// Cost counters so far (`matches` counts emitted matches).
    pub fn stats(&self) -> ScanStats {
        self.stats
    }

    /// Rows/candidates currently buffered inside the cursor — the
    /// bounded-memory figure the executor reports: candidate skeletons
    /// plus the active document's bindings and version entries, never the
    /// full match set.
    pub fn buffered(&self) -> usize {
        self.cands.iter().map(|m| m.values().map(Vec::len).sum::<usize>()).sum::<usize>()
            + self.cur.as_ref().map_or(0, |s| s.bindings.len() + s.entries.len())
    }

    /// Runs the structural join for one document and preps lazy emission.
    fn build_doc_state(&mut self, doc: DocId) -> Result<DocState> {
        let flat = FlatPattern::new(&self.pattern);
        let views: Vec<Vec<Cand<'_>>> = self
            .cands
            .iter()
            .map(|m| {
                m[&doc]
                    .iter()
                    .map(|o| Cand { xid: o.xid, path: &o.path, from: o.from, to: o.to })
                    .collect()
            })
            .collect();
        let slices: Vec<&[Cand<'_>]> = views.iter().map(|v| v.as_slice()).collect();
        let mut bindings: Vec<Binding> = Vec::new();
        let mut bvec: Vec<&Cand<'_>> = Vec::with_capacity(flat.nodes.len());
        join_rec(&flat, &slices, doc, &mut bvec, &mut |b| {
            // Joint validity range of the whole binding.
            let from = b.iter().map(|c| c.from).max().unwrap_or(0);
            let to = b.iter().map(|c| c.to).min().unwrap_or(OPEN);
            if from < to {
                bindings.push(Binding {
                    nodes: b.iter().map(|c| Eid::new(doc, c.xid)).collect(),
                    from,
                    to,
                });
            }
            Ok(())
        })?;
        // Same order the materializing scan sorts into: versions ascend via
        // the entry walk, bindings ascend by bound xids here.
        bindings.sort_by(|a, b| a.nodes.cmp(&b.nodes));
        let entries = self.db.store().versions(doc)?;
        let resolved = match self.mode {
            Mode::At(t) => match self.version_cache.get(&doc) {
                Some(v) => *v,
                None => self.db.store().version_at(doc, t).unwrap_or(None),
            },
            _ => None,
        };
        let current = entries
            .iter()
            .rev()
            .find(|e| e.kind == VersionKind::Content)
            .map(|e| (e.version, e.ts));
        Ok(DocState { doc, bindings, entries, resolved, current, entry_idx: 0, bind_idx: 0 })
    }

    /// Pulls the next match, or `None` when the scan is exhausted.
    pub fn try_next(&mut self) -> Result<Option<Match>> {
        loop {
            let mode = self.mode;
            if let Some(st) = self.cur.as_mut() {
                let emitted = match mode {
                    Mode::Current => {
                        // The binding is valid now; report the current
                        // content version.
                        match st.current {
                            Some((v, ts)) if st.bind_idx < st.bindings.len() => {
                                let b = &st.bindings[st.bind_idx];
                                st.bind_idx += 1;
                                Some(Match { doc: st.doc, version: v, ts, nodes: b.nodes.clone() })
                            }
                            _ => None,
                        }
                    }
                    Mode::At(_) => match st.resolved {
                        Some(v) if st.bind_idx < st.bindings.len() => {
                            let b = &st.bindings[st.bind_idx];
                            st.bind_idx += 1;
                            debug_assert!(b.from <= v.0 && v.0 < b.to);
                            let ts = st.entries[v.0 as usize].ts;
                            Some(Match { doc: st.doc, version: v, ts, nodes: b.nodes.clone() })
                        }
                        _ => None,
                    },
                    Mode::All(interval) => {
                        // Expand bindings to content versions — the
                        // temporal join's "valid at same time" — keeping
                        // only versions committed inside the requested
                        // interval (§8 rewriting), lazily per pull.
                        let mut found = None;
                        'outer: while st.entry_idx < st.entries.len() {
                            let e = &st.entries[st.entry_idx];
                            if e.kind == VersionKind::Content && interval.contains(e.ts) {
                                while st.bind_idx < st.bindings.len() {
                                    let b = &st.bindings[st.bind_idx];
                                    st.bind_idx += 1;
                                    if e.version.0 >= b.from && e.version.0 < b.to {
                                        found = Some(Match {
                                            doc: st.doc,
                                            version: e.version,
                                            ts: e.ts,
                                            nodes: b.nodes.clone(),
                                        });
                                        break 'outer;
                                    }
                                }
                            }
                            st.entry_idx += 1;
                            st.bind_idx = 0;
                        }
                        found
                    }
                };
                match emitted {
                    Some(m) => {
                        self.stats.matches += 1;
                        return Ok(Some(m));
                    }
                    None => self.cur = None,
                }
            }
            if self.doc_idx == self.docs.len() {
                return Ok(None);
            }
            let doc = self.docs[self.doc_idx];
            self.doc_idx += 1;
            self.cur = Some(self.build_doc_state(doc)?);
        }
    }
}

/// Recursive structural join: bind pattern nodes in pre-order; node `k`'s
/// candidate must satisfy the edge relationship with its pattern-parent's
/// binding and overlap it temporally.
fn join_rec<'c, 'p>(
    flat: &FlatPattern<'_>,
    per_node: &[&'c [Cand<'p>]],
    doc: DocId,
    binding: &mut Vec<&'c Cand<'p>>,
    emit: &mut dyn FnMut(&[&Cand<'p>]) -> Result<()>,
) -> Result<()> {
    let k = binding.len();
    if k == flat.nodes.len() {
        return emit(binding);
    }
    let (pnode, parent_idx) = (&flat.nodes[k].0, flat.nodes[k].1);
    for cand in per_node[k] {
        if let Some(pi) = parent_idx {
            let parent = binding[pi];
            let ok = match pnode.edge {
                PatternEdge::Child => {
                    cand.path.len() >= 2 && cand.path[cand.path.len() - 2] == parent.xid
                }
                PatternEdge::Descendant => {
                    cand.path.len() > 1 && cand.path[..cand.path.len() - 1].contains(&parent.xid)
                }
            };
            if !ok {
                continue;
            }
            // Temporal overlap with everything bound so far.
            if binding.iter().any(|b| cand.from >= b.to || b.from >= cand.to) {
                continue;
            }
        }
        let _ = doc;
        binding.push(cand);
        join_rec(flat, per_node, doc, binding, emit)?;
        binding.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdb_xml::pattern::PatternNode;

    fn ts(n: u64) -> Timestamp {
        Timestamp::from_micros(n * 1000)
    }

    /// The Figure 1 database: guide.com restaurant list over four states.
    fn figure1() -> Database {
        let db = Database::in_memory();
        // 01/01: Napoli 15
        db.put(
            "guide.com/restaurants",
            "<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>",
            ts(101),
        )
        .unwrap();
        // 15/01: + Akropolis 13
        db.put(
            "guide.com/restaurants",
            "<guide><restaurant><name>Napoli</name><price>15</price></restaurant>\
             <restaurant><name>Akropolis</name><price>13</price></restaurant></guide>",
            ts(115),
        )
        .unwrap();
        // 31/01: Akropolis gone, Napoli 18
        db.put(
            "guide.com/restaurants",
            "<guide><restaurant><name>Napoli</name><price>18</price></restaurant></guide>",
            ts(131),
        )
        .unwrap();
        db
    }

    fn restaurant_pattern() -> PatternTree {
        PatternTree::new(PatternNode::tag("restaurant").project())
    }

    #[test]
    fn q1_snapshot_restaurants_at_26_01() {
        // Q1: list all restaurants as of 26/01 → snapshot with 2 restaurants.
        let db = figure1();
        let m = db.tpattern_scan(None, &restaurant_pattern(), ts(126)).unwrap();
        assert_eq!(m.len(), 2);
        assert!(m.iter().all(|x| x.version == VersionId(1)));
        assert!(m.iter().all(|x| x.ts == ts(115)), "TEID ts = version commit time");
    }

    #[test]
    fn snapshot_before_creation_is_empty() {
        let db = figure1();
        let m = db.tpattern_scan(None, &restaurant_pattern(), ts(50)).unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn current_scan_sees_only_latest() {
        let db = figure1();
        let m = db.pattern_scan(None, &restaurant_pattern()).unwrap();
        assert_eq!(m.len(), 1, "only Napoli remains");
        assert_eq!(m[0].version, VersionId(2));
    }

    #[test]
    fn q3_price_history_of_napoli() {
        // Q3: EVERY + name=Napoli → all versions of the Napoli restaurant.
        let db = figure1();
        let pattern = PatternTree::new(
            PatternNode::tag("restaurant").project().child(PatternNode::tag("name").word("napoli")),
        );
        let m = db.tpattern_scan_all(None, &pattern).unwrap();
        // Napoli exists in versions 0, 1, 2.
        assert_eq!(m.len(), 3);
        let versions: Vec<u32> = m.iter().map(|x| x.version.0).collect();
        assert_eq!(versions, vec![0, 1, 2]);
        // Akropolis appears in exactly one version.
        let pattern = PatternTree::new(
            PatternNode::tag("restaurant")
                .project()
                .child(PatternNode::tag("name").word("akropolis")),
        );
        let m = db.tpattern_scan_all(None, &pattern).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].version, VersionId(1));
    }

    #[test]
    fn structural_join_parent_vs_ancestor() {
        let db = Database::in_memory();
        db.put("d", "<a><b><c>deep</c></b><c>shallow</c></a>", ts(1)).unwrap();
        // a isParentOf c → only the shallow c.
        let p = PatternTree::new(PatternNode::tag("a").child(PatternNode::tag("c").project()));
        assert_eq!(db.pattern_scan(None, &p).unwrap().len(), 1);
        // a isAscendantOf c → both.
        let p = PatternTree::new(PatternNode::tag("a").descendant(PatternNode::tag("c").project()));
        assert_eq!(db.pattern_scan(None, &p).unwrap().len(), 2);
    }

    #[test]
    fn word_and_tag_conjunction_same_element() {
        let db = Database::in_memory();
        db.put("d", "<g><name>Napoli</name><city>Napoli</city></g>", ts(1)).unwrap();
        let p = PatternTree::new(PatternNode::tag("name").word("napoli"));
        assert_eq!(db.pattern_scan(None, &p).unwrap().len(), 1);
        let p = PatternTree::new(PatternNode::tag("city").word("napoli"));
        assert_eq!(db.pattern_scan(None, &p).unwrap().len(), 1);
    }

    #[test]
    fn doc_filter_restricts() {
        let db = Database::in_memory();
        let d1 = db.put("one", "<g><r><n>X</n></r></g>", ts(1)).unwrap().doc;
        db.put("two", "<g><r><n>X</n></r></g>", ts(2)).unwrap();
        let p = PatternTree::new(PatternNode::tag("r"));
        assert_eq!(db.pattern_scan(None, &p).unwrap().len(), 2);
        assert_eq!(db.pattern_scan(Some(d1), &p).unwrap().len(), 1);
    }

    #[test]
    fn deleted_doc_excluded_from_current_but_not_history() {
        let db = figure1();
        db.delete("guide.com/restaurants", ts(140)).unwrap();
        assert!(db.pattern_scan(None, &restaurant_pattern()).unwrap().is_empty());
        // Snapshot before deletion still works.
        assert_eq!(db.tpattern_scan(None, &restaurant_pattern(), ts(126)).unwrap().len(), 2);
        // And inside the tombstone gap, nothing.
        assert!(db.tpattern_scan(None, &restaurant_pattern(), ts(150)).unwrap().is_empty());
    }

    #[test]
    fn temporal_join_rejects_disjoint_ranges() {
        // An element whose word appears only in v0 and a sibling created in
        // v1 never co-occur.
        let db = Database::in_memory();
        db.put("d", "<g><a>early</a></g>", ts(1)).unwrap();
        db.put("d", "<g><a>late</a><b>other</b></g>", ts(2)).unwrap();
        let p = PatternTree::new(
            PatternNode::tag("g")
                .child(PatternNode::tag("a").word("early"))
                .child(PatternNode::tag("b")),
        );
        assert!(db.tpattern_scan_all(None, &p).unwrap().is_empty());
        // But "late" and b co-exist in v1.
        let p = PatternTree::new(
            PatternNode::tag("g")
                .child(PatternNode::tag("a").word("late"))
                .child(PatternNode::tag("b")),
        );
        let m = db.tpattern_scan_all(None, &p).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].version, VersionId(1));
    }

    #[test]
    fn stats_counters_populated() {
        let db = figure1();
        let p = PatternTree::new(
            PatternNode::tag("restaurant").child(PatternNode::tag("name").word("napoli")),
        );
        let (m, stats) = db.tpattern_scan_counted(None, &p, ts(126)).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(stats.fti_lookups, 3, "restaurant, name, napoli");
        assert!(stats.postings >= 3);
        assert_eq!(stats.matches, 1);
    }

    #[test]
    fn unconstrained_node_rejected() {
        let db = figure1();
        let p = PatternTree::new(PatternNode::any());
        assert!(matches!(db.pattern_scan(None, &p), Err(Error::Unsupported(_))));
    }

    #[test]
    fn parallel_multi_doc_scan_is_deterministic() {
        // Enough documents (and versions) that the per-document join
        // actually fans out over the worker pool.
        let db = Database::in_memory();
        for i in 0..40u64 {
            let name = format!("doc{i}");
            db.put(&name, &format!("<g><r><n>shared</n><p>{i}</p></r></g>"), ts(i + 1)).unwrap();
            db.put(&name, &format!("<g><r><n>shared</n><p>{}</p></r></g>", i + 100), ts(i + 100))
                .unwrap();
        }
        let p = PatternTree::new(
            PatternNode::tag("r").project().child(PatternNode::tag("n").word("shared")),
        );
        let all = db.tpattern_scan_all(None, &p).unwrap();
        assert_eq!(all.len(), 80, "two versions of every document match");
        let again = db.tpattern_scan_all(None, &p).unwrap();
        let key = |m: &Match| (m.doc, m.version, m.nodes.clone());
        assert_eq!(
            all.iter().map(key).collect::<Vec<_>>(),
            again.iter().map(key).collect::<Vec<_>>(),
            "worker scheduling must not leak into output order"
        );
        let mut sorted = all.iter().map(key).collect::<Vec<_>>();
        sorted.sort();
        assert_eq!(all.iter().map(key).collect::<Vec<_>>(), sorted);
        // The snapshot mode agrees with a per-document scan.
        let at = db.tpattern_scan(None, &p, ts(50)).unwrap();
        assert_eq!(at.len(), 40);
    }

    #[test]
    fn match_teids_projection() {
        let db = figure1();
        let pattern = PatternTree::new(
            PatternNode::tag("restaurant").child(PatternNode::tag("name").word("napoli").project()),
        );
        let m = db.tpattern_scan(None, &pattern, ts(126)).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].teids().len(), 2);
        assert_eq!(m[0].projected_teids(&pattern).len(), 1);
    }
}
