//! The [`Database`] facade: document store + index set, kept consistent.
//!
//! `Database` is what applications (and the query layer) talk to. Writes
//! go through [`Database::put`] / [`Database::delete`], which update the
//! repository (§7.1) and drive index maintenance (§7.2) in one step; all
//! §6 operators are methods implemented in the [`crate::ops`] modules.
//!
//! On reopening a persistent store, the in-memory indexes are loaded from
//! the last **index checkpoint** (written by [`Database::checkpoint`] /
//! [`Database::close`]) and only versions above each document's
//! checkpointed high-water mark are replayed — O(index) + O(tail) instead
//! of O(history). When the checkpoint is missing, stale for a document
//! (vacuum rewrote covered history), or fails its CRC, recovery falls
//! back to replaying the affected chains in full; the outcome is recorded
//! in [`RecoveryReport::index_checkpoint`], never surfaced as an error.

use std::collections::HashMap;

use txdb_base::{DocId, Error, Result, Timestamp, VersionId};
use txdb_index::maint::{IndexConfig, IndexSet};
use txdb_index::persist::{self, DocCover};
use txdb_storage::repo::{
    DeleteResult, DocumentStore, IndexCheckpointReport, IndexCheckpointState, PutResult,
    RecoveryReport, StoreOptions, VersionEntry, VersionKind,
};
use txdb_xml::tree::Tree;

/// Database configuration, built fluently and consumed by
/// [`DbOptions::open`]:
///
/// ```
/// use txdb_core::DbOptions;
/// let db = DbOptions::new().snapshot_every(4).cache_bytes(1 << 20).open().unwrap();
/// db.put("d", "<a>hi</a>", txdb_base::Timestamp::from_secs(1)).unwrap();
/// ```
///
/// The `store`/`index` fields stay public for callers that need the full
/// [`StoreOptions`] surface (e.g. a fault-injecting VFS).
#[derive(Clone, Debug, Default)]
pub struct DbOptions {
    /// Storage options (path, buffer size, snapshot policy, WAL, cache).
    pub store: StoreOptions,
    /// Index options (§7.2 alternative, EID index).
    pub index: IndexConfig,
}

impl DbOptions {
    /// Defaults: in-memory, no snapshots, 8 MiB version cache.
    pub fn new() -> DbOptions {
        DbOptions::default()
    }

    /// Options for a persistent store rooted at `path`.
    pub fn at(path: impl Into<std::path::PathBuf>) -> DbOptions {
        DbOptions::new().path(path)
    }

    /// Sets (or replaces) the on-disk directory of an existing builder —
    /// for callers that decide between memory and disk at runtime;
    /// [`DbOptions::at`] is the usual entry point.
    pub fn path(mut self, path: impl Into<std::path::PathBuf>) -> DbOptions {
        self.store.path = Some(path.into());
        self
    }

    /// Materialize a complete snapshot every `k` versions (§7.3.3).
    pub fn snapshot_every(mut self, k: u32) -> DbOptions {
        self.store.snapshot_every = Some(k);
        self
    }

    /// Byte budget of the materialized-version cache; `0` disables it.
    pub fn cache_bytes(mut self, n: usize) -> DbOptions {
        self.store.cache_bytes = n;
        self
    }

    /// Buffer-pool capacity in pages.
    pub fn buffer_pages(mut self, n: usize) -> DbOptions {
        self.store.buffer_pages = n;
        self
    }

    /// Fsync the WAL on every append.
    pub fn wal_sync(mut self, on: bool) -> DbOptions {
        self.store.wal_sync = on;
        self
    }

    /// Index configuration (§7.2 alternative, EID index).
    pub fn index_config(mut self, cfg: IndexConfig) -> DbOptions {
        self.index = cfg;
        self
    }

    /// Enables or disables persistent index checkpoints (on by default).
    /// Disabled, [`Database::checkpoint`] writes no index blob and every
    /// open replays full history — the cold path the open benchmark
    /// measures against.
    pub fn index_checkpoints(mut self, on: bool) -> DbOptions {
        self.index.checkpoints = on;
        self
    }

    /// Appends trace events (spans, recovery fallbacks) as JSON lines to
    /// `path`. Metrics are collected either way; the sink only adds the
    /// event log.
    pub fn event_log(mut self, path: impl Into<std::path::PathBuf>) -> DbOptions {
        self.store.event_log = Some(path.into());
        self
    }

    /// Shares a metrics registry with the database (e.g. one registry
    /// across several stores); by default each database creates its own,
    /// reachable via [`Database::metrics`].
    pub fn metrics(mut self, reg: std::sync::Arc<txdb_base::obs::Registry>) -> DbOptions {
        self.store.metrics = Some(reg);
        self
    }

    /// Opens the database. Recovery details (WAL replay counts, salvage
    /// state) are available afterwards via [`Database::recovery_report`].
    pub fn open(self) -> Result<Database> {
        Database::open(self)
    }
}

/// The temporal XML database.
///
/// Concurrency contract: `Database` is `Send + Sync` — share one handle
/// (e.g. in an `Arc`) across any number of threads. Reads run in parallel
/// under the store's reader lock; writers serialize on the store's writer
/// lock for validate + WAL append + page apply, then pay the durability
/// fsync *outside* it through the WAL's group commit, so N concurrent
/// committers share ~1 fsync. Timestamps are MVCC for free: versions are
/// immutable once written, so a reader that queries `as of t` (with `t`
/// at or below the last committed timestamp) sees a stable snapshot no
/// matter what commits afterwards. [`Database::pin_snapshot`] makes that
/// explicit and additionally fences vacuum from purging versions the
/// pinned timestamp can still see.
///
/// One narrow window remains: a write updates the store *then* the
/// indexes, so a reader racing a writer may briefly observe a version in
/// the store whose postings are not yet open (queries stay crash-free;
/// they may miss the in-flight version until the put returns). Pin a
/// timestamp below the in-flight write — or serialise with the writer —
/// when that window matters.
pub struct Database {
    store: DocumentStore,
    indexes: IndexSet,
    recovery: RecoveryReport,
}

impl Database {
    /// Opens (or creates) a database; rebuilds in-memory indexes from the
    /// stored version chains when the store already has content. What
    /// recovery did (WAL replay counts, salvage state, chains that could
    /// not be re-indexed) is kept on the handle — see
    /// [`Database::recovery_report`].
    pub fn open(opts: DbOptions) -> Result<Database> {
        let (store, mut report) = DocumentStore::open(opts.store)?;
        let indexes =
            IndexSet::open_with_metrics(store.pool().clone(), opts.index, store.metrics())?;
        let mut db = Database { store, indexes, recovery: RecoveryReport::default() };
        if db.store.is_read_only() {
            // Salvage mode: index whatever chains still replay. A chain
            // that hits corruption stays unindexed (store reads still
            // work); the count is recorded so the caller can tell how
            // much of the database is unqueryable through the indexes.
            // The index checkpoint is ignored — the WAL is evidence and a
            // full replay is the most conservative reconstruction.
            report.unindexed_chains = db.rebuild_indexes_salvage();
        } else {
            report.index_checkpoint = db.load_or_rebuild_indexes()?;
        }
        db.recovery = report;
        Ok(db)
    }

    /// Loads the persisted index checkpoint and replays only history above
    /// each document's high-water mark; falls back to full replay —
    /// globally when the checkpoint is absent/unreadable, per document
    /// when a cover is stale (vacuum rewrote covered history). Every
    /// fallback is recorded, none is an error: a bad checkpoint costs
    /// open time, never data.
    fn load_or_rebuild_indexes(&self) -> Result<IndexCheckpointReport> {
        let reg = self.store.metrics();
        let _span = reg.span("index.open_us");
        let mut r = IndexCheckpointReport::default();
        if !self.indexes.config.checkpoints {
            r.docs_replayed = self.store.list()?.len();
            self.rebuild_indexes()?;
            return Ok(r);
        }
        let load_started = std::time::Instant::now();
        let ckpt = match self.store.read_index_checkpoint() {
            Ok(Some(blob)) => match persist::decode(&blob) {
                Ok(ckpt) => Some(ckpt),
                Err(e) => {
                    r.note = Some(format!("checkpoint undecodable: {e}"));
                    None
                }
            },
            Ok(None) => None,
            Err(e) => {
                r.note = Some(format!("checkpoint unreadable: {e}"));
                None
            }
        };
        reg.histogram("checkpoint.load_us").record(load_started.elapsed().as_micros() as u64);
        let Some(ckpt) = ckpt else {
            r.state = if r.note.is_some() {
                IndexCheckpointState::Fallback
            } else {
                IndexCheckpointState::Absent
            };
            if r.state == IndexCheckpointState::Fallback {
                // The runtime-visible trail of the ROADMAP's "CRC/staleness
                // fallback only visible via fsck" gap: count it and emit an
                // event so operators see full replays without a debugger.
                reg.counter("recovery.index_fallback").inc();
                reg.emit(
                    "recovery.index_fallback",
                    &[(
                        "note",
                        txdb_base::obs::EventValue::Str(r.note.as_deref().unwrap_or("unknown")),
                    )],
                );
            }
            r.docs_replayed = self.store.list()?.len();
            self.rebuild_indexes()?;
            return Ok(r);
        };
        let covers: HashMap<DocId, DocCover> = ckpt.covers.iter().map(|c| (c.doc, *c)).collect();
        self.indexes.install(ckpt.fti, ckpt.delta);
        r.state = IndexCheckpointState::Loaded;
        for (doc, _) in self.store.list()? {
            let entries = self.store.versions(doc)?;
            match covers.get(&doc) {
                Some(c) if cover_fresh(c, &entries) => {
                    r.versions_replayed += self.replay_chain(doc, &entries, c.covered as usize)?;
                    r.docs_loaded += 1;
                }
                cover => {
                    // Stale cover (vacuum rewrote covered history, or the
                    // entry list shrank) or a document the checkpoint has
                    // never seen: rebuild just this document.
                    if cover.is_some() {
                        self.indexes.drop_document(doc);
                        reg.counter("recovery.stale_cover_replays").inc();
                        reg.emit(
                            "recovery.stale_cover_replay",
                            &[("doc", txdb_base::obs::EventValue::U64(doc.0 as u64))],
                        );
                        r.note.get_or_insert_with(|| {
                            format!("stale cover for doc {doc}: full replay")
                        });
                    }
                    self.replay_chain(doc, &entries, 0)?;
                    r.docs_replayed += 1;
                }
            }
        }
        Ok(r)
    }

    /// What recovery did when this handle was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Fresh in-memory database with default options.
    pub fn in_memory() -> Database {
        DbOptions::new().open().expect("in-memory open")
    }

    /// In-memory database with a snapshot policy (§7.3.3).
    #[deprecated(since = "0.2.0", note = "use DbOptions::new().snapshot_every(k).open()")]
    pub fn in_memory_with_snapshots(every: u32) -> Database {
        DbOptions::new().snapshot_every(every).open().expect("in-memory open")
    }

    /// The underlying document store.
    pub fn store(&self) -> &DocumentStore {
        &self.store
    }

    /// The index set.
    pub fn indexes(&self) -> &IndexSet {
        &self.indexes
    }

    /// The metrics registry shared by every layer of this database
    /// (storage, indexes, query executor).
    pub fn metrics(&self) -> &std::sync::Arc<txdb_base::obs::Registry> {
        self.store.metrics()
    }

    /// Stores a new version of `name` (XML text) at transaction time `ts`.
    pub fn put(&self, name: &str, xml: &str, ts: Timestamp) -> Result<PutResult> {
        let tree = txdb_xml::parse::parse_document(xml)?;
        self.put_tree(name, tree, ts)
    }

    /// Stores a new version of `name` (parsed tree) at time `ts`.
    pub fn put_tree(&self, name: &str, tree: Tree, ts: Timestamp) -> Result<PutResult> {
        let resurrected = self
            .store
            .doc_id(name)?
            .map(|d| self.store.is_deleted(d))
            .transpose()?
            .unwrap_or(false);
        let r = self.store.put_tree(name, tree, ts)?;
        if r.changed {
            self.indexes.on_put(
                r.doc,
                r.version,
                r.ts,
                &r.new_tree,
                r.delta.as_ref(),
                resurrected,
            )?;
        }
        Ok(r)
    }

    /// Deletes `name` at time `ts` (tombstone; history remains queryable).
    pub fn delete(&self, name: &str, ts: Timestamp) -> Result<Option<DeleteResult>> {
        let r = self.store.delete(name, ts)?;
        if let Some(d) = &r {
            self.indexes.on_delete(d.doc, d.version, d.ts, &d.old_tree)?;
        }
        Ok(r)
    }

    /// Checkpoints the database: flushes pages and truncates the WAL,
    /// and (unless [`IndexConfig::checkpoints`] is off) persists the
    /// in-memory indexes so the next open replays only what comes after.
    ///
    /// Ordering matters for crash safety: the store state (including the
    /// persistent EID index pages) is flushed *before* the index blob is
    /// written and flushed. A crash between the two leaves an older blob
    /// whose covers trail the flushed store — safe, because catch-up
    /// replay is idempotent — whereas a blob *newer* than the flushed
    /// EID pages would leave covered versions silently unindexed.
    pub fn checkpoint(&self) -> Result<()> {
        self.store.checkpoint()?;
        if self.indexes.config.checkpoints {
            let _span = self.store.metrics().span("checkpoint.index_write_us");
            let covers = self.collect_covers()?;
            let blob = self.indexes.encode_checkpoint(&covers);
            self.store.write_index_checkpoint(&blob)?;
            self.store.checkpoint()?;
        }
        Ok(())
    }

    /// Clean close: checkpoint (indexes included) and consume the handle,
    /// guaranteeing the next open is O(index). A salvage-mode handle
    /// closes without writing anything.
    pub fn close(self) -> Result<()> {
        if self.store.is_read_only() {
            return Ok(());
        }
        self.checkpoint()
    }

    /// The per-document coverage stamps for an index checkpoint taken
    /// now: every version entry of every document, with the purged count
    /// that lets a later open detect vacuums below the high-water mark.
    fn collect_covers(&self) -> Result<Vec<DocCover>> {
        let mut covers = Vec::new();
        for (doc, _) in self.store.list()? {
            let entries = self.store.versions(doc)?;
            let purged = entries.iter().filter(|e| e.kind == VersionKind::Purged).count() as u32;
            covers.push(DocCover { doc, covered: entries.len() as u32, purged });
        }
        Ok(covers)
    }

    /// Purges the history of `name` before the given horizon (see
    /// [`DocumentStore::vacuum`]). The in-memory FTI shrinks in place:
    /// closed postings whose range ended before the first surviving
    /// version are dropped immediately, so a long-lived handle reclaims
    /// the memory without a reopen (queries at purged times already
    /// return nothing because the purged versions are unselectable).
    pub fn vacuum(
        &self,
        name: &str,
        before: Timestamp,
    ) -> Result<Option<txdb_storage::repo::VacuumStats>> {
        let Some(stats) = self.store.vacuum(name, before)? else { return Ok(None) };
        if stats.purged_versions > 0 {
            if let Some(doc) = self.store.doc_id(name)? {
                let entries = self.store.versions(doc)?;
                if let Some(first_live) = entries.iter().find(|e| e.kind != VersionKind::Purged) {
                    self.indexes.on_vacuum(doc, first_live.version);
                }
            }
        }
        Ok(Some(stats))
    }

    /// Rebuilds the in-memory indexes by replaying every document's
    /// version chain (used at open; also handy in tests).
    pub fn rebuild_indexes(&self) -> Result<()> {
        for (doc, _) in self.store.list()? {
            self.rebuild_doc_indexes(doc)?;
        }
        Ok(())
    }

    /// Salvage-mode index rebuild: replays whatever chains still replay
    /// and counts the ones that hit corruption instead of failing the
    /// open. Returns the number of skipped (unindexed) chains.
    fn rebuild_indexes_salvage(&self) -> usize {
        let Ok(docs) = self.store.list() else {
            // The catalog itself is unreadable: nothing indexed, and the
            // salvage reason in the report already says why.
            return 0;
        };
        docs.iter().filter(|(doc, _)| self.rebuild_doc_indexes(*doc).is_err()).count()
    }

    /// Replays one document's version chain into the in-memory indexes.
    fn rebuild_doc_indexes(&self, doc: DocId) -> Result<()> {
        let entries = self.store.versions(doc)?;
        self.replay_chain(doc, &entries, 0).map(|_| ())
    }

    /// Replays `entries[skip..]` of one document into the in-memory
    /// indexes, returning how many entries were replayed. `skip > 0` is
    /// the checkpoint catch-up path: the skipped prefix is already
    /// reflected in the loaded indexes, so only its *kinds* are scanned to
    /// recover the replay state (was the document deleted? does the next
    /// content version need full indexing?) — no trees are materialized
    /// for covered history.
    fn replay_chain(&self, doc: DocId, entries: &[VersionEntry], skip: usize) -> Result<usize> {
        let mut prev_tombstone = false;
        // The first content version after a vacuumed (purged) prefix
        // must be indexed from scratch: its delta describes a change
        // against a version that was never indexed.
        let mut need_full = true;
        for e in &entries[..skip] {
            match e.kind {
                VersionKind::Purged => need_full = true,
                VersionKind::Tombstone => prev_tombstone = true,
                VersionKind::Content => {
                    prev_tombstone = false;
                    need_full = false;
                }
            }
        }
        for e in &entries[skip..] {
            match e.kind {
                // Purged versions have no payload to index; history
                // lookups at their times already return nothing.
                VersionKind::Purged => {
                    need_full = true;
                }
                VersionKind::Tombstone => {
                    // The tree current before the tombstone:
                    let prefix = &entries[..e.version.0 as usize];
                    match prefix.iter().rev().find(|p| p.kind == VersionKind::Content) {
                        Some(prev) => {
                            let old_tree = self.store.version_tree(doc, prev.version)?;
                            self.indexes.on_delete(doc, e.version, e.ts, &old_tree)?;
                        }
                        // A vacuum can purge every content version below
                        // a trailing tombstone: nothing is indexed, so
                        // there is nothing to close.
                        None if prefix.iter().any(|p| p.kind == VersionKind::Purged) => {}
                        None => {
                            return Err(Error::Corrupt(format!(
                                "doc {doc}: tombstone at v{} without preceding content",
                                e.version.0
                            )));
                        }
                    }
                    prev_tombstone = true;
                }
                VersionKind::Content => {
                    let tree = self.store.version_tree(doc, e.version)?;
                    let delta = if need_full { None } else { self.store.delta(doc, e.version)? };
                    self.indexes.on_put(
                        doc,
                        e.version,
                        e.ts,
                        &tree,
                        delta.as_ref(),
                        prev_tombstone,
                    )?;
                    prev_tombstone = false;
                    need_full = false;
                }
            }
        }
        Ok(entries.len() - skip)
    }

    /// The version of `doc` valid at `ts` (delta-index lookup).
    pub fn version_at(&self, doc: DocId, ts: Timestamp) -> Result<Option<VersionId>> {
        self.store.version_at(doc, ts)
    }

    /// Pins `ts` as a live snapshot: until the returned pin drops,
    /// [`Database::vacuum`] clamps its purge horizon at or below `ts`, so
    /// every version a query `as of ts` can reach stays reconstructible.
    /// Reads need no pin for *consistency* (committed versions are
    /// immutable); the pin buys *durability of history* against a
    /// concurrent vacuum. Query streams hold one automatically for their
    /// lifetime. The `db.active_snapshots` gauge tracks live pins.
    pub fn pin_snapshot(&self, ts: Timestamp) -> txdb_storage::SnapshotPin {
        self.store.snapshots().pin(ts)
    }
}

/// Does a checkpoint cover still describe this version chain? The chain
/// may only have *grown* past the high-water mark; covered history must
/// be untouched, which a vacuum (the one operation that rewrites covered
/// entries) always betrays by raising the purged count.
fn cover_fresh(c: &DocCover, entries: &[VersionEntry]) -> bool {
    let n = c.covered as usize;
    n <= entries.len()
        && entries[..n].iter().filter(|e| e.kind == VersionKind::Purged).count()
            == c.purged as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdb_index::fti::OccKind;

    fn ts(n: u64) -> Timestamp {
        Timestamp::from_micros(n * 1000)
    }

    #[test]
    fn put_updates_store_and_indexes() {
        let db = Database::in_memory();
        db.put("g", "<guide><name>Napoli</name></guide>", ts(1)).unwrap();
        assert_eq!(db.indexes().fti().lookup("napoli", OccKind::Word).len(), 1);
        db.put("g", "<guide><name>Roma</name></guide>", ts(2)).unwrap();
        assert_eq!(db.indexes().fti().lookup("napoli", OccKind::Word).len(), 0);
        assert_eq!(db.indexes().fti().lookup("roma", OccKind::Word).len(), 1);
    }

    #[test]
    fn delete_closes_index_state() {
        let db = Database::in_memory();
        db.put("g", "<a>word</a>", ts(1)).unwrap();
        db.delete("g", ts(2)).unwrap();
        assert_eq!(db.indexes().fti().lookup("word", OccKind::Word).len(), 0);
        assert_eq!(db.indexes().fti().lookup_h("word", OccKind::Word).len(), 1);
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("txdb-db-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn close_then_open_loads_checkpoint_without_replay() {
        let dir = tmp_dir("ckpt-load");
        let opts = DbOptions::at(&dir);
        {
            let db = opts.clone().open().unwrap();
            for i in 0..8u64 {
                db.put("g", &format!("<a><b>alpha{i}</b></a>"), ts(i + 1)).unwrap();
            }
            db.put("h", "<x>gamma</x>", ts(20)).unwrap();
            db.delete("h", ts(21)).unwrap();
            db.close().unwrap();
        }
        let db = opts.open().unwrap();
        let r = &db.recovery_report().index_checkpoint;
        assert_eq!(r.state, IndexCheckpointState::Loaded, "note: {:?}", r.note);
        assert_eq!(r.docs_loaded, 2);
        assert_eq!(r.docs_replayed, 0);
        assert_eq!(r.versions_replayed, 0);
        let fti = db.indexes().fti();
        assert_eq!(fti.lookup("alpha7", OccKind::Word).len(), 1);
        assert_eq!(fti.lookup_h("alpha0", OccKind::Word).len(), 1);
        assert_eq!(fti.lookup("gamma", OccKind::Word).len(), 0);
        assert_eq!(fti.lookup_h("gamma", OccKind::Word).len(), 1);
        drop(fti);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_replays_only_past_the_high_water_mark() {
        let dir = tmp_dir("ckpt-tail");
        let opts = DbOptions::at(&dir);
        {
            let db = opts.clone().open().unwrap();
            db.put("g", "<a>one</a>", ts(1)).unwrap();
            db.put("g", "<a>two</a>", ts(2)).unwrap();
            db.checkpoint().unwrap();
            // Tail written after the checkpoint: must be caught up at open.
            db.put("g", "<a>three</a>", ts(3)).unwrap();
            db.put("k", "<n>new</n>", ts(4)).unwrap();
            // No close(): the WAL carries the tail across the reopen.
        }
        let db = opts.open().unwrap();
        let r = &db.recovery_report().index_checkpoint;
        assert_eq!(r.state, IndexCheckpointState::Loaded, "note: {:?}", r.note);
        assert_eq!(r.docs_loaded, 1);
        assert_eq!(r.versions_replayed, 1, "only v2 of g is past the mark");
        assert_eq!(r.docs_replayed, 1, "doc k is not covered at all");
        let fti = db.indexes().fti();
        assert_eq!(fti.lookup("three", OccKind::Word).len(), 1);
        assert_eq!(fti.lookup("two", OccKind::Word).len(), 0);
        assert_eq!(fti.lookup_h("one", OccKind::Word).len(), 1);
        assert_eq!(fti.lookup("new", OccKind::Word).len(), 1);
        drop(fti);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_full_replay() {
        use txdb_storage::{Pager, PHYS_PAGE_SIZE};
        let dir = tmp_dir("ckpt-crc");
        let opts = DbOptions::at(&dir);
        {
            let db = opts.clone().open().unwrap();
            db.put("g", "<a>alpha</a>", ts(1)).unwrap();
            db.put("g", "<a>beta</a>", ts(2)).unwrap();
            db.close().unwrap();
        }
        // Flip one byte inside the checkpoint root page. The pager's
        // physical page CRC (and the checkpoint's own header checks)
        // must reject it and the open must degrade, not fail.
        let root = {
            let pager = Pager::open(&dir.join("data.db")).unwrap();
            pager.root(txdb_storage::repo::roots::FTI_META)
        };
        assert!(!root.is_null(), "close() should have written a checkpoint");
        {
            use std::io::{Read, Seek, SeekFrom, Write};
            let mut f = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(dir.join("data.db"))
                .unwrap();
            let off = root.0 * PHYS_PAGE_SIZE as u64 + 20;
            f.seek(SeekFrom::Start(off)).unwrap();
            let mut b = [0u8; 1];
            f.read_exact(&mut b).unwrap();
            f.seek(SeekFrom::Start(off)).unwrap();
            f.write_all(&[b[0] ^ 0xff]).unwrap();
        }
        let db = opts.open().unwrap();
        let r = &db.recovery_report().index_checkpoint;
        assert_eq!(r.state, IndexCheckpointState::Fallback);
        assert!(r.note.is_some(), "fallback must say why");
        assert_eq!(r.docs_replayed, 1);
        // The fallback is observable at runtime, not only in the report.
        let snap = db.metrics().snapshot();
        assert_eq!(snap.counter("recovery.index_fallback"), Some(1), "{}", snap.to_text());
        assert_eq!(db.indexes().fti().lookup("beta", OccKind::Word).len(), 1);
        assert_eq!(db.indexes().fti().lookup_h("alpha", OccKind::Word).len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoints_disabled_always_full_replays() {
        let dir = tmp_dir("ckpt-off");
        let opts = DbOptions::at(&dir).index_checkpoints(false);
        {
            let db = opts.clone().open().unwrap();
            db.put("g", "<a>alpha</a>", ts(1)).unwrap();
            db.close().unwrap();
        }
        let db = opts.open().unwrap();
        let r = &db.recovery_report().index_checkpoint;
        assert_eq!(r.state, IndexCheckpointState::Absent);
        assert_eq!(r.docs_replayed, 1);
        assert_eq!(db.indexes().fti().lookup("alpha", OccKind::Word).len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn vacuum_below_tombstone_reopens_without_panicking() {
        // A vacuum purges every content version below a trailing
        // tombstone, leaving a [Purged.., Tombstone] chain. Replaying it
        // used to panic ("tombstone follows content"); it must now skip
        // the tombstone quietly.
        let dir = tmp_dir("ckpt-vac");
        let opts = DbOptions::at(&dir);
        {
            let db = opts.clone().open().unwrap();
            db.put("g", "<a>alpha</a>", ts(1)).unwrap();
            db.delete("g", ts(2)).unwrap();
            db.put("live", "<a>live</a>", ts(3)).unwrap();
            let stats = db.vacuum("g", ts(10)).unwrap().unwrap();
            assert!(stats.purged_versions > 0, "vacuum should purge the content version");
            // No checkpoint after the vacuum: the reopen replays in full.
            db.store().checkpoint().unwrap();
        }
        let db = opts.clone().open().unwrap();
        assert_eq!(db.indexes().fti().lookup("live", OccKind::Word).len(), 1);
        assert_eq!(db.indexes().fti().lookup("alpha", OccKind::Word).len(), 0);
        // And the checkpoint path over the same chain also survives.
        db.close().unwrap();
        let db = opts.clone().open().unwrap();
        let r = &db.recovery_report().index_checkpoint;
        assert_eq!(r.state, IndexCheckpointState::Loaded, "note: {:?}", r.note);
        // Resurrecting the fully-vacuumed document stores a fresh base
        // version (nothing left to diff against) and must survive a
        // reopen on both the replay and the checkpoint path.
        let res = db.put("g", "<a>reborn</a>", ts(20)).unwrap();
        assert!(res.changed);
        assert!(res.delta.is_none(), "rebirth has no delta");
        assert_eq!(db.indexes().fti().lookup("reborn", OccKind::Word).len(), 1);
        db.close().unwrap();
        let db = opts.open().unwrap();
        assert!(db.recovery_report().salvage.is_none());
        assert_eq!(db.indexes().fti().lookup("reborn", OccKind::Word).len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn vacuum_invalidates_covered_history() {
        // Checkpoint first, vacuum after: the cover's purged count no
        // longer matches, so just that document must be fully replayed.
        let dir = tmp_dir("ckpt-stale");
        let opts = DbOptions::at(&dir);
        {
            let db = opts.clone().open().unwrap();
            db.put("g", "<a>one</a>", ts(1)).unwrap();
            db.put("g", "<a>two</a>", ts(2)).unwrap();
            db.put("h", "<b>other</b>", ts(3)).unwrap();
            db.checkpoint().unwrap();
            let stats = db.vacuum("g", ts(3)).unwrap().unwrap();
            assert!(stats.purged_versions > 0);
            db.store().checkpoint().unwrap();
        }
        let db = opts.open().unwrap();
        let r = &db.recovery_report().index_checkpoint;
        assert_eq!(r.state, IndexCheckpointState::Loaded);
        assert_eq!(r.docs_loaded, 1, "h still matches its cover");
        assert_eq!(r.docs_replayed, 1, "g was vacuumed and must rebuild");
        assert!(r.note.as_deref().unwrap_or("").contains("stale cover"));
        assert_eq!(db.indexes().fti().lookup("two", OccKind::Word).len(), 1);
        assert_eq!(db.indexes().fti().lookup("other", OccKind::Word).len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn vacuum_shrinks_fti_on_live_handle() {
        let db = Database::in_memory();
        db.put("g", "<a>one</a>", ts(1)).unwrap();
        db.put("g", "<a>two</a>", ts(2)).unwrap();
        db.put("g", "<a>three</a>", ts(3)).unwrap();
        let before = db.indexes().fti().posting_count();
        assert_eq!(db.indexes().fti().lookup_h("one", OccKind::Word).len(), 1);
        let stats = db.vacuum("g", ts(4)).unwrap().unwrap();
        assert_eq!(stats.purged_versions, 2, "versions of 'one' and 'two' purged");
        // The purged occurrences leave the live handle immediately — no
        // reopen needed for the memory to come back.
        let after = db.indexes().fti().posting_count();
        assert!(after < before, "posting lists must shrink in place ({before} -> {after})");
        assert_eq!(db.indexes().fti().lookup_h("one", OccKind::Word).len(), 0);
        assert_eq!(db.indexes().fti().lookup_h("two", OccKind::Word).len(), 0);
        // The surviving current version stays findable, and the remapped
        // open structures still support maintenance.
        assert_eq!(db.indexes().fti().lookup("three", OccKind::Word).len(), 1);
        db.put("g", "<a>four</a>", ts(5)).unwrap();
        assert_eq!(db.indexes().fti().lookup("three", OccKind::Word).len(), 0);
        assert_eq!(db.indexes().fti().lookup("four", OccKind::Word).len(), 1);
        assert_eq!(db.indexes().fti().lookup_h("three", OccKind::Word).len(), 1);
    }

    #[test]
    fn tombstone_without_preceding_content_is_corrupt_not_a_panic() {
        let db = Database::in_memory();
        db.put("g", "<a>x</a>", ts(1)).unwrap();
        let doc = db.store().doc_id("g").unwrap().unwrap();
        // Hand-corrupted chain: a tombstone with no content (and no
        // purge marks) before it.
        let entries = vec![VersionEntry {
            version: VersionId(0),
            ts: ts(1),
            kind: VersionKind::Tombstone,
            delta_rid: None,
            snapshot_rid: None,
        }];
        let err = db.replay_chain(doc, &entries, 0).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");
        assert!(err.to_string().contains("without preceding content"), "got {err}");
    }

    #[test]
    fn reopen_rebuilds_fti() {
        let dir = std::env::temp_dir().join(format!("txdb-db-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = DbOptions::at(&dir);
        {
            let db = opts.clone().open().unwrap();
            db.put("g", "<a><b>alpha</b></a>", ts(1)).unwrap();
            db.put("g", "<a><b>beta</b></a>", ts(2)).unwrap();
            db.put("h", "<x>gamma</x>", ts(3)).unwrap();
            db.delete("h", ts(4)).unwrap();
            db.checkpoint().unwrap();
        }
        let db = opts.open().unwrap();
        assert_eq!(db.recovery_report().unindexed_chains, 0);
        let fti = db.indexes().fti();
        assert_eq!(fti.lookup("beta", OccKind::Word).len(), 1);
        assert_eq!(fti.lookup("alpha", OccKind::Word).len(), 0);
        assert_eq!(fti.lookup_h("alpha", OccKind::Word).len(), 1);
        assert_eq!(fti.lookup("gamma", OccKind::Word).len(), 0);
        drop(fti);
        // Temporal lookups work after rebuild.
        let doc = db.store().doc_id("g").unwrap().unwrap();
        let v = db.version_at(doc, ts(1)).unwrap().unwrap();
        assert_eq!(v, VersionId(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
