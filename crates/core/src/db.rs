//! The [`Database`] facade: document store + index set, kept consistent.
//!
//! `Database` is what applications (and the query layer) talk to. Writes
//! go through [`Database::put`] / [`Database::delete`], which update the
//! repository (§7.1) and drive index maintenance (§7.2) in one step; all
//! §6 operators are methods implemented in the [`crate::ops`] modules.
//!
//! On reopening a persistent store, the in-memory temporal FTI is rebuilt
//! by replaying each document's stored delta chain (the persistent EID
//! index is rebuilt too — replay is deterministic, so values are
//! identical).

use txdb_base::{DocId, Result, Timestamp, VersionId};
use txdb_index::maint::{IndexConfig, IndexSet};
use txdb_storage::repo::{
    DeleteResult, DocumentStore, PutResult, RecoveryReport, StoreOptions, VersionKind,
};
use txdb_xml::tree::Tree;

/// Database configuration, built fluently and consumed by
/// [`DbOptions::open`]:
///
/// ```
/// use txdb_core::DbOptions;
/// let db = DbOptions::new().snapshot_every(4).cache_bytes(1 << 20).open().unwrap();
/// db.put("d", "<a>hi</a>", txdb_base::Timestamp::from_secs(1)).unwrap();
/// ```
///
/// The `store`/`index` fields stay public for callers that need the full
/// [`StoreOptions`] surface (e.g. a fault-injecting VFS).
#[derive(Clone, Debug, Default)]
pub struct DbOptions {
    /// Storage options (path, buffer size, snapshot policy, WAL, cache).
    pub store: StoreOptions,
    /// Index options (§7.2 alternative, EID index).
    pub index: IndexConfig,
}

impl DbOptions {
    /// Defaults: in-memory, no snapshots, 8 MiB version cache.
    pub fn new() -> DbOptions {
        DbOptions::default()
    }

    /// Options for a persistent store rooted at `path`.
    pub fn at(path: impl Into<std::path::PathBuf>) -> DbOptions {
        DbOptions::new().path(path)
    }

    /// Sets (or replaces) the on-disk directory of an existing builder —
    /// for callers that decide between memory and disk at runtime;
    /// [`DbOptions::at`] is the usual entry point.
    pub fn path(mut self, path: impl Into<std::path::PathBuf>) -> DbOptions {
        self.store.path = Some(path.into());
        self
    }

    /// Materialize a complete snapshot every `k` versions (§7.3.3).
    pub fn snapshot_every(mut self, k: u32) -> DbOptions {
        self.store.snapshot_every = Some(k);
        self
    }

    /// Byte budget of the materialized-version cache; `0` disables it.
    pub fn cache_bytes(mut self, n: usize) -> DbOptions {
        self.store.cache_bytes = n;
        self
    }

    /// Buffer-pool capacity in pages.
    pub fn buffer_pages(mut self, n: usize) -> DbOptions {
        self.store.buffer_pages = n;
        self
    }

    /// Fsync the WAL on every append.
    pub fn wal_sync(mut self, on: bool) -> DbOptions {
        self.store.wal_sync = on;
        self
    }

    /// Index configuration (§7.2 alternative, EID index).
    pub fn index_config(mut self, cfg: IndexConfig) -> DbOptions {
        self.index = cfg;
        self
    }

    /// Opens the database. Recovery details (WAL replay counts, salvage
    /// state) are available afterwards via [`Database::recovery_report`].
    pub fn open(self) -> Result<Database> {
        Database::open(self)
    }
}

/// The temporal XML database.
///
/// Concurrency contract: the store is single-writer/multi-reader and each
/// index guards itself, but a write updates the store *then* the indexes —
/// a reader racing a writer may briefly observe a version in the store
/// whose postings are not yet open (queries stay crash-free; they may miss
/// the in-flight version until the put returns). Serialise writers (and
/// readers that need point-in-time consistency across store + index)
/// externally if that window matters.
pub struct Database {
    store: DocumentStore,
    indexes: IndexSet,
    recovery: RecoveryReport,
}

impl Database {
    /// Opens (or creates) a database; rebuilds in-memory indexes from the
    /// stored version chains when the store already has content. What
    /// recovery did (WAL replay counts, salvage state, chains that could
    /// not be re-indexed) is kept on the handle — see
    /// [`Database::recovery_report`].
    pub fn open(opts: DbOptions) -> Result<Database> {
        let (store, mut report) = DocumentStore::open(opts.store)?;
        let indexes = IndexSet::open(store.pool().clone(), opts.index)?;
        let mut db = Database { store, indexes, recovery: RecoveryReport::default() };
        if db.store.is_read_only() {
            // Salvage mode: index whatever chains still replay. A chain
            // that hits corruption stays unindexed (store reads still
            // work); the count is recorded so the caller can tell how
            // much of the database is unqueryable through the indexes.
            report.unindexed_chains = db.rebuild_indexes_salvage();
        } else {
            db.rebuild_indexes()?;
        }
        db.recovery = report;
        Ok(db)
    }

    /// What recovery did when this handle was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Fresh in-memory database with default options.
    pub fn in_memory() -> Database {
        DbOptions::new().open().expect("in-memory open")
    }

    /// In-memory database with a snapshot policy (§7.3.3).
    #[deprecated(since = "0.2.0", note = "use DbOptions::new().snapshot_every(k).open()")]
    pub fn in_memory_with_snapshots(every: u32) -> Database {
        DbOptions::new().snapshot_every(every).open().expect("in-memory open")
    }

    /// The underlying document store.
    pub fn store(&self) -> &DocumentStore {
        &self.store
    }

    /// The index set.
    pub fn indexes(&self) -> &IndexSet {
        &self.indexes
    }

    /// Stores a new version of `name` (XML text) at transaction time `ts`.
    pub fn put(&self, name: &str, xml: &str, ts: Timestamp) -> Result<PutResult> {
        let tree = txdb_xml::parse::parse_document(xml)?;
        self.put_tree(name, tree, ts)
    }

    /// Stores a new version of `name` (parsed tree) at time `ts`.
    pub fn put_tree(&self, name: &str, tree: Tree, ts: Timestamp) -> Result<PutResult> {
        let resurrected = self
            .store
            .doc_id(name)?
            .map(|d| self.store.is_deleted(d))
            .transpose()?
            .unwrap_or(false);
        let r = self.store.put_tree(name, tree, ts)?;
        if r.changed {
            self.indexes.on_put(
                r.doc,
                r.version,
                r.ts,
                &r.new_tree,
                r.delta.as_ref(),
                resurrected,
            )?;
        }
        Ok(r)
    }

    /// Deletes `name` at time `ts` (tombstone; history remains queryable).
    pub fn delete(&self, name: &str, ts: Timestamp) -> Result<Option<DeleteResult>> {
        let r = self.store.delete(name, ts)?;
        if let Some(d) = &r {
            self.indexes.on_delete(d.doc, d.version, d.ts, &d.old_tree)?;
        }
        Ok(r)
    }

    /// Flushes pages and truncates the WAL.
    pub fn checkpoint(&self) -> Result<()> {
        self.store.checkpoint()
    }

    /// Purges the history of `name` before the given horizon (see
    /// [`DocumentStore::vacuum`]). The in-memory FTI keeps its historical
    /// postings until the next reopen; queries at purged times already
    /// return nothing because the purged versions are unselectable.
    pub fn vacuum(
        &self,
        name: &str,
        before: Timestamp,
    ) -> Result<Option<txdb_storage::repo::VacuumStats>> {
        self.store.vacuum(name, before)
    }

    /// Rebuilds the in-memory indexes by replaying every document's
    /// version chain (used at open; also handy in tests).
    pub fn rebuild_indexes(&self) -> Result<()> {
        for (doc, _) in self.store.list()? {
            self.rebuild_doc_indexes(doc)?;
        }
        Ok(())
    }

    /// Salvage-mode index rebuild: replays whatever chains still replay
    /// and counts the ones that hit corruption instead of failing the
    /// open. Returns the number of skipped (unindexed) chains.
    fn rebuild_indexes_salvage(&self) -> usize {
        let Ok(docs) = self.store.list() else {
            // The catalog itself is unreadable: nothing indexed, and the
            // salvage reason in the report already says why.
            return 0;
        };
        docs.iter().filter(|(doc, _)| self.rebuild_doc_indexes(*doc).is_err()).count()
    }

    /// Replays one document's version chain into the in-memory indexes.
    fn rebuild_doc_indexes(&self, doc: DocId) -> Result<()> {
        let entries = self.store.versions(doc)?;
        let mut prev_tombstone = false;
        // The first content version after a vacuumed (purged) prefix
        // must be indexed from scratch: its delta describes a change
        // against a version that was never indexed.
        let mut need_full = true;
        for e in &entries {
            match e.kind {
                // Purged versions have no payload to index; history
                // lookups at their times already return nothing.
                VersionKind::Purged => {
                    need_full = true;
                }
                VersionKind::Tombstone => {
                    // The tree current before the tombstone:
                    let prev = entries[..e.version.0 as usize]
                        .iter()
                        .rev()
                        .find(|p| p.kind == VersionKind::Content)
                        .expect("tombstone follows content");
                    let old_tree = self.store.version_tree(doc, prev.version)?;
                    self.indexes.on_delete(doc, e.version, e.ts, &old_tree)?;
                    prev_tombstone = true;
                }
                VersionKind::Content => {
                    let tree = self.store.version_tree(doc, e.version)?;
                    let delta = if need_full { None } else { self.store.delta(doc, e.version)? };
                    self.indexes.on_put(
                        doc,
                        e.version,
                        e.ts,
                        &tree,
                        delta.as_ref(),
                        prev_tombstone,
                    )?;
                    prev_tombstone = false;
                    need_full = false;
                }
            }
        }
        Ok(())
    }

    /// The version of `doc` valid at `ts` (delta-index lookup).
    pub fn version_at(&self, doc: DocId, ts: Timestamp) -> Result<Option<VersionId>> {
        self.store.version_at(doc, ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txdb_index::fti::OccKind;

    fn ts(n: u64) -> Timestamp {
        Timestamp::from_micros(n * 1000)
    }

    #[test]
    fn put_updates_store_and_indexes() {
        let db = Database::in_memory();
        db.put("g", "<guide><name>Napoli</name></guide>", ts(1)).unwrap();
        assert_eq!(db.indexes().fti().lookup("napoli", OccKind::Word).len(), 1);
        db.put("g", "<guide><name>Roma</name></guide>", ts(2)).unwrap();
        assert_eq!(db.indexes().fti().lookup("napoli", OccKind::Word).len(), 0);
        assert_eq!(db.indexes().fti().lookup("roma", OccKind::Word).len(), 1);
    }

    #[test]
    fn delete_closes_index_state() {
        let db = Database::in_memory();
        db.put("g", "<a>word</a>", ts(1)).unwrap();
        db.delete("g", ts(2)).unwrap();
        assert_eq!(db.indexes().fti().lookup("word", OccKind::Word).len(), 0);
        assert_eq!(db.indexes().fti().lookup_h("word", OccKind::Word).len(), 1);
    }

    #[test]
    fn reopen_rebuilds_fti() {
        let dir = std::env::temp_dir().join(format!("txdb-db-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = DbOptions::at(&dir);
        {
            let db = opts.clone().open().unwrap();
            db.put("g", "<a><b>alpha</b></a>", ts(1)).unwrap();
            db.put("g", "<a><b>beta</b></a>", ts(2)).unwrap();
            db.put("h", "<x>gamma</x>", ts(3)).unwrap();
            db.delete("h", ts(4)).unwrap();
            db.checkpoint().unwrap();
        }
        let db = opts.open().unwrap();
        assert_eq!(db.recovery_report().unindexed_chains, 0);
        let fti = db.indexes().fti();
        assert_eq!(fti.lookup("beta", OccKind::Word).len(), 1);
        assert_eq!(fti.lookup("alpha", OccKind::Word).len(), 0);
        assert_eq!(fti.lookup_h("alpha", OccKind::Word).len(), 1);
        assert_eq!(fti.lookup("gamma", OccKind::Word).len(), 0);
        drop(fti);
        // Temporal lookups work after rebuild.
        let doc = db.store().doc_id("g").unwrap().unwrap();
        let v = db.version_at(doc, ts(1)).unwrap().unwrap();
        assert_eq!(v, VersionId(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
