//! # txdb-core — the temporal query operators (the paper's contribution)
//!
//! This crate implements every operator of §6 with the algorithms of §7.3,
//! on top of the substrates built in the sibling crates (storage engine,
//! completed deltas, temporal full-text index):
//!
//! | Operator (§6)                      | Algorithm (§7.3) | Module |
//! |------------------------------------|------------------|--------|
//! | `PatternScan(Δ, pattern)`          | per-word FTI lookups + multiway structural join | [`ops::pattern`] |
//! | `TPatternScan(Δ, pattern, t)`      | same with `FTI_lookup_T` (§7.3.1) | [`ops::pattern`] |
//! | `TPatternScanAll(Δ, pattern)`      | `FTI_lookup_H` + temporal multiway join (§7.3.2) | [`ops::pattern`] |
//! | `Reconstruct(TEID)`                | backward completed deltas from nearest snapshot/current (§7.3.3) | [`ops::history`] |
//! | `DocHistory(doc, t1, t2)`          | incremental backward reconstruction, newest first (§7.3.4) | [`ops::history`] |
//! | `ElementHistory(EID, t1, t2)`      | DocHistory + subtree filter (§7.3.5) | [`ops::history`] |
//! | `CreTime(TEID)` / `DelTime(TEID)`  | both §7.3.6 strategies: delta traversal AND the EID-time index | [`ops::lifetime`] |
//! | `PreviousTS`/`NextTS`/`CurrentTS`  | delta-index lookups (§7.3.7) | [`ops::versions`] |
//! | `Diff(E1, E2)`                     | XyDiff edit script returned as XML (§7.3.8) | [`ops::diffop`] |
//!
//! All of them are methods of [`Database`], which wires the document store
//! and the index set together and keeps the indexes consistent on every
//! update. Operators that the paper's cost discussion cares about also
//! come in `*_counted` variants returning the number of deltas read, the
//! I/O-cost metric of the experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod db;
pub mod ops;

pub use db::{Database, DbOptions};
pub use ops::pattern::{Match, MatchCursor, ScanStats};
