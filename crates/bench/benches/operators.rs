//! Criterion micro-benchmarks for the temporal operators (E2/E4/E5/E6/E9/E11).
//!
//! ```sh
//! cargo bench -p txdb-bench --bench operators
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txdb_base::{Eid, Interval, VersionId};
use txdb_bench::{build_guides, step_ts, GuideParams};
use txdb_core::ops::lifetime::LifetimeStrategy;
use txdb_xml::pattern::{PatternNode, PatternTree};

fn napoli_pattern() -> PatternTree {
    PatternTree::new(
        PatternNode::tag("restaurant").project().child(PatternNode::tag("name").word("napoli")),
    )
}

/// E2/E6 — TPatternScan and TPatternScanAll vs history length.
fn bench_pattern_scans(c: &mut Criterion) {
    let mut g = c.benchmark_group("pattern_scan");
    g.sample_size(20);
    for versions in [8usize, 64] {
        let twin = build_guides(GuideParams { versions, ..Default::default() });
        let mid = twin.times[twin.times.len() / 2];
        let p = napoli_pattern();
        g.bench_with_input(BenchmarkId::new("tpattern_scan", versions), &versions, |b, _| {
            b.iter(|| twin.temporal.tpattern_scan(None, &p, mid).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("tpattern_scan_all", versions), &versions, |b, _| {
            b.iter(|| twin.temporal.tpattern_scan_all(None, &p).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("stratum_scan_at", versions), &versions, |b, _| {
            b.iter(|| twin.stratum.pattern_at(&p, mid))
        });
        g.bench_with_input(BenchmarkId::new("stratum_scan_all", versions), &versions, |b, _| {
            b.iter(|| twin.stratum.pattern_all(&p))
        });
    }
    g.finish();
}

/// E4 — Reconstruct by chain length and snapshot policy.
fn bench_reconstruct(c: &mut Criterion) {
    let mut g = c.benchmark_group("reconstruct");
    g.sample_size(20);
    for (label, snap) in [("nosnap", None), ("snap16", Some(16u32))] {
        let twin = build_guides(GuideParams {
            docs: 1,
            versions: 128,
            snapshot_every: snap,
            ..Default::default()
        });
        let doc = twin.temporal.store().list().unwrap()[0].0;
        // Unchanged generator steps may be skipped, so index from the
        // actual version count.
        let nvers = twin.temporal.store().versions(doc).unwrap().len() as u32;
        for target in [nvers - 1, nvers / 2, 1] {
            g.bench_function(BenchmarkId::new(label, format!("v{target}")), |b| {
                b.iter(|| twin.temporal.store().version_tree(doc, VersionId(target)).unwrap())
            });
        }
    }
    g.finish();
}

/// E5 — CreTime strategies.
fn bench_cretime(c: &mut Criterion) {
    let twin = build_guides(GuideParams { docs: 1, versions: 64, ..Default::default() });
    let db = &twin.temporal;
    let doc = db.store().list().unwrap()[0].0;
    let cur = db.store().current_tree(doc).unwrap();
    let eid = {
        let n = cur.iter().find(|&n| cur.node(n).name() == Some("restaurant")).unwrap();
        Eid::new(doc, cur.node(n).xid)
    };
    let teid = eid.at(*twin.times.last().unwrap());
    let mut g = c.benchmark_group("cretime");
    g.bench_function("traverse", |b| {
        b.iter(|| db.cre_time(teid, LifetimeStrategy::Traverse).unwrap())
    });
    g.bench_function("index", |b| b.iter(|| db.cre_time(teid, LifetimeStrategy::Index).unwrap()));
    g.finish();
}

/// E11 — PreviousTS/NextTS/CurrentTS delta-index lookups.
fn bench_version_ts(c: &mut Criterion) {
    let twin = build_guides(GuideParams { docs: 1, versions: 64, ..Default::default() });
    let db = &twin.temporal;
    let doc = db.store().list().unwrap()[0].0;
    let cur = db.store().current_tree(doc).unwrap();
    let eid = Eid::new(doc, cur.node(cur.root().unwrap()).xid);
    let mid = twin.times[32];
    let mut g = c.benchmark_group("version_ts");
    g.bench_function("previous_ts", |b| b.iter(|| db.previous_ts(eid.at(mid)).unwrap()));
    g.bench_function("next_ts", |b| b.iter(|| db.next_ts(eid.at(mid)).unwrap()));
    g.bench_function("current_ts", |b| b.iter(|| db.current_ts(eid).unwrap()));
    g.finish();
}

/// E9 — DocHistory / ElementHistory.
fn bench_history(c: &mut Criterion) {
    let twin = build_guides(GuideParams { docs: 1, versions: 64, ..Default::default() });
    let db = &twin.temporal;
    let doc = db.store().list().unwrap()[0].0;
    let cur = db.store().current_tree(doc).unwrap();
    let eid = {
        let n = cur.iter().find(|&n| cur.node(n).name() == Some("restaurant")).unwrap();
        Eid::new(doc, cur.node(n).xid)
    };
    let last16 = Interval::new(step_ts(49), txdb_base::Timestamp::FOREVER);
    let mut g = c.benchmark_group("history");
    g.sample_size(20);
    g.bench_function("doc_history_16", |b| b.iter(|| db.doc_history(doc, last16).unwrap()));
    g.bench_function("element_history_16", |b| b.iter(|| db.element_history(eid, last16).unwrap()));
    g.finish();
}

criterion_group!(
    benches,
    bench_pattern_scans,
    bench_reconstruct,
    bench_cretime,
    bench_version_ts,
    bench_history
);
criterion_main!(benches);
