//! Criterion benchmarks for the end-to-end query pipeline (E3/E12):
//! the three paper query shapes plus the parser alone.
//!
//! ```sh
//! cargo bench -p txdb-bench --bench queries
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use txdb_bench::{build_guides, GuideParams};
use txdb_query::parse_query;
use txdb_query::QueryExt;

fn bench_queries(c: &mut Criterion) {
    let twin =
        build_guides(GuideParams { docs: 10, restaurants: 25, versions: 16, ..Default::default() });
    let db = &twin.temporal;
    let mid = twin.times[twin.times.len() / 2];
    let now = *twin.times.last().unwrap();

    let q1 = format!(
        r#"SELECT R FROM doc("*")[{}]//restaurant R WHERE R/name = "Golden Napoli 0""#,
        mid.micros()
    );
    let q2 = format!(r#"SELECT COUNT(R) FROM doc("*")[{}]//restaurant R"#, mid.micros());
    let q3 = r#"SELECT TIME(R), R/price FROM doc("*")[EVERY]//restaurant R
                WHERE R/name = "Golden Napoli 0""#;

    let mut g = c.benchmark_group("query");
    g.sample_size(20);
    g.bench_function("parse_only", |b| b.iter(|| parse_query(q3).unwrap()));
    g.bench_function("q1_snapshot", |b| b.iter(|| db.query(&q1).at(now).run().unwrap()));
    g.bench_function("q2_count_no_reconstruct", |b| {
        b.iter(|| db.query(&q2).at(now).run().unwrap())
    });
    g.bench_function("q3_history", |b| b.iter(|| db.query(q3).at(now).run().unwrap()));
    g.finish();
}

/// Ingest throughput: put (parse + diff + store + index maintenance) at
/// different document sizes — the update-cost side of the system.
fn bench_ingest(c: &mut Criterion) {
    use txdb_base::Timestamp;
    use txdb_core::Database;
    use txdb_wgen::tdocgen::{DocGen, DocGenConfig};

    let mut g = c.benchmark_group("ingest");
    g.sample_size(20);
    for items in [20usize, 100] {
        // Pre-generate a version stream so generation cost stays out of
        // the measurement.
        let mut gen =
            DocGen::new(DocGenConfig { items, changes_per_version: 3, ..Default::default() }, 31);
        let mut versions = vec![gen.xml()];
        for _ in 0..64 {
            versions.push(gen.step());
        }
        g.bench_function(format!("put_update_{items}items"), |b| {
            b.iter_batched(
                || {
                    let db = Database::in_memory();
                    db.put("d", &versions[0], Timestamp::from_secs(1)).unwrap();
                    db
                },
                |db| {
                    for (i, v) in versions[1..8].iter().enumerate() {
                        db.put("d", v, Timestamp::from_secs(2 + i as u64)).unwrap();
                    }
                    db
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_queries, bench_ingest);
criterion_main!(benches);
