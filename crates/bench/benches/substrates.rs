//! Criterion micro-benchmarks for the substrates: parser, diff (E10),
//! codec, B+-tree and heap.
//!
//! ```sh
//! cargo bench -p txdb-bench --bench substrates
//! ```

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use txdb_base::{Timestamp, VersionId, Xid};
use txdb_storage::btree::BTree;
use txdb_storage::buffer::BufferPool;
use txdb_storage::heap::Heap;
use txdb_storage::pager::Pager;
use txdb_wgen::tdocgen::{DocGen, DocGenConfig};
use txdb_xml::codec::{decode_tree, encode_tree};
use txdb_xml::parse::parse_document;
use txdb_xml::serialize::to_string;
use txdb_xml::tree::{NodeId, Tree};

fn sample_doc(items: usize) -> String {
    DocGen::new(DocGenConfig { items, ..Default::default() }, 9).xml()
}

fn with_xids(src: &str) -> Tree {
    let mut t = parse_document(src).unwrap();
    let ids: Vec<NodeId> = t.iter().collect();
    for (i, id) in ids.iter().enumerate() {
        t.node_mut(*id).xid = Xid(i as u64 + 1);
    }
    t
}

fn bench_parse_serialize(c: &mut Criterion) {
    let mut g = c.benchmark_group("xml");
    for items in [50usize, 500] {
        let xml = sample_doc(items);
        let tree = parse_document(&xml).unwrap();
        g.bench_with_input(BenchmarkId::new("parse", items), &items, |b, _| {
            b.iter(|| parse_document(&xml).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("serialize", items), &items, |b, _| {
            b.iter(|| to_string(&tree))
        });
        g.bench_with_input(BenchmarkId::new("codec_encode", items), &items, |b, _| {
            b.iter(|| encode_tree(&tree))
        });
        let bytes = encode_tree(&tree);
        g.bench_with_input(BenchmarkId::new("codec_decode", items), &items, |b, _| {
            b.iter(|| decode_tree(&bytes).unwrap())
        });
    }
    g.finish();
}

/// E10 — the diff itself, by document size and change volume.
fn bench_diff(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff");
    g.sample_size(20);
    for (items, changes) in [(50usize, 3usize), (200, 3), (200, 30)] {
        let mut gen = DocGen::new(
            DocGenConfig { items, changes_per_version: changes, ..Default::default() },
            21,
        );
        let old = with_xids(&gen.xml());
        let new_xml = gen.step();
        g.bench_function(BenchmarkId::new(format!("{items}items"), format!("{changes}chg")), |b| {
            b.iter(|| {
                let mut new = parse_document(&new_xml).unwrap();
                let mut next = Xid(1_000_000);
                txdb_delta::diff_trees(
                    &old,
                    &mut new,
                    &mut next,
                    VersionId(0),
                    Timestamp::from_secs(1),
                    Timestamp::from_secs(2),
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree");
    // Insert throughput into a fresh tree.
    g.bench_function("insert_1k", |b| {
        b.iter(|| {
            let pool = Arc::new(BufferPool::new(Pager::memory(), 1024));
            let t = BTree::open(pool, 1).unwrap();
            for i in 0..1000u32 {
                t.insert(&i.to_be_bytes(), b"value").unwrap();
            }
        })
    });
    // Point lookups on a populated tree.
    let pool = Arc::new(BufferPool::new(Pager::memory(), 1024));
    let tree = BTree::open(pool, 1).unwrap();
    for i in 0..10_000u32 {
        tree.insert(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
    }
    g.bench_function("get_hot", |b| {
        let mut k = 0u32;
        b.iter(|| {
            k = (k + 7919) % 10_000;
            tree.get(&k.to_be_bytes()).unwrap()
        })
    });
    g.bench_function("range_100", |b| {
        b.iter(|| tree.range(&5000u32.to_be_bytes(), Some(&5100u32.to_be_bytes())).unwrap().count())
    });
    g.finish();
}

fn bench_heap(c: &mut Criterion) {
    let mut g = c.benchmark_group("heap");
    let pool = Arc::new(BufferPool::new(Pager::memory(), 1024));
    let heap = Heap::open(pool, 0).unwrap();
    let small = vec![7u8; 200];
    let big = vec![7u8; 30_000];
    let small_rid = heap.insert(&small).unwrap();
    let big_rid = heap.insert(&big).unwrap();
    g.bench_function("insert_small", |b| b.iter(|| heap.insert(&small).unwrap()));
    g.bench_function("get_small", |b| b.iter(|| heap.get(small_rid).unwrap()));
    g.bench_function("get_blob_30k", |b| b.iter(|| heap.get(big_rid).unwrap()));
    g.finish();
}

criterion_group!(benches, bench_parse_serialize, bench_diff, bench_btree, bench_heap);
criterion_main!(benches);
