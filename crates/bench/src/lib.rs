//! Shared infrastructure for the benchmark harness: twin-database
//! builders (temporal engine + stratum baseline over the same update
//! stream), timing helpers and table formatting for the `experiments`
//! binary and the Criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use txdb_base::Timestamp;
use txdb_core::{Database, DbOptions};
use txdb_index::maint::{FtiMode, IndexConfig};
use txdb_stratum::StratumDb;
use txdb_wgen::restaurant::RestaurantGuide;
use txdb_wgen::tdocgen::{DocGen, DocGenConfig};

/// The temporal engine and the stratum baseline loaded with the *same*
/// version stream.
pub struct TwinDb {
    /// The paper's system.
    pub temporal: Database,
    /// The §1 baseline.
    pub stratum: StratumDb,
    /// Commit timestamps of every stored version round.
    pub times: Vec<Timestamp>,
}

/// Build parameters for the restaurant-guide workload.
#[derive(Clone, Copy, Debug)]
pub struct GuideParams {
    /// Number of guide documents.
    pub docs: usize,
    /// Restaurants per guide.
    pub restaurants: usize,
    /// Versions per document (beyond the initial one).
    pub versions: usize,
    /// Changes per version.
    pub changes: usize,
    /// Snapshot policy for the temporal store.
    pub snapshot_every: Option<u32>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GuideParams {
    fn default() -> Self {
        GuideParams {
            docs: 10,
            restaurants: 25,
            versions: 16,
            changes: 3,
            snapshot_every: None,
            seed: 1,
        }
    }
}

/// The base timestamp all workloads start at.
pub fn t0() -> Timestamp {
    Timestamp::from_date(2001, 1, 1)
}

/// A timestamp `n` steps (hours) after [`t0`].
pub fn step_ts(n: u64) -> Timestamp {
    t0() + txdb_base::Duration::from_hours(n)
}

/// Builds the twin databases over the restaurant workload.
pub fn build_guides(p: GuideParams) -> TwinDb {
    build_guides_with_mode(p, FtiMode::Versions)
}

/// The [`DbOptions`] every twin builder opens the temporal side with.
fn twin_options(snapshot_every: Option<u32>, mode: FtiMode) -> DbOptions {
    let mut opts =
        DbOptions::new().index_config(IndexConfig { fti_mode: mode, ..IndexConfig::default() });
    if let Some(k) = snapshot_every {
        opts = opts.snapshot_every(k);
    }
    opts
}

/// Builds the twin databases with an explicit FTI mode (E7 ablation).
#[allow(clippy::explicit_counter_loop)]
pub fn build_guides_with_mode(p: GuideParams, mode: FtiMode) -> TwinDb {
    let temporal = twin_options(p.snapshot_every, mode).open().expect("open");
    let mut stratum = StratumDb::new();
    let mut gens: Vec<RestaurantGuide> =
        (0..p.docs).map(|i| RestaurantGuide::new(p.restaurants, p.seed + i as u64)).collect();
    let mut times = Vec::new();
    let mut step = 0u64;
    for round in 0..=p.versions {
        let ts = step_ts(step);
        for (i, g) in gens.iter_mut().enumerate() {
            let xml = if round == 0 { g.xml() } else { g.step(p.changes) };
            let url = format!("guide{i}.example.org/restaurants");
            temporal.put(&url, &xml, ts).expect("put");
            stratum.put(&url, &xml, ts).expect("put");
        }
        times.push(ts);
        step += 1;
    }
    TwinDb { temporal, stratum, times }
}

/// Build parameters for the TDocGen workload.
#[derive(Clone, Debug)]
pub struct TdocParams {
    /// Number of documents.
    pub docs: usize,
    /// Versions per document (beyond the initial one).
    pub versions: usize,
    /// Generator shape.
    pub cfg: DocGenConfig,
    /// RNG seed.
    pub seed: u64,
    /// Snapshot policy.
    pub snapshot_every: Option<u32>,
}

impl Default for TdocParams {
    fn default() -> Self {
        TdocParams {
            docs: 5,
            versions: 20,
            cfg: DocGenConfig::default(),
            seed: 7,
            snapshot_every: None,
        }
    }
}

/// Builds the twin databases over the TDocGen workload.
#[allow(clippy::explicit_counter_loop)]
pub fn build_tdocs(p: &TdocParams, mode: FtiMode) -> TwinDb {
    let temporal = twin_options(p.snapshot_every, mode).open().expect("open");
    let mut stratum = StratumDb::new();
    let mut gens: Vec<DocGen> =
        (0..p.docs).map(|i| DocGen::new(p.cfg.clone(), p.seed + i as u64)).collect();
    let mut times = Vec::new();
    let mut step = 0u64;
    for round in 0..=p.versions {
        let ts = step_ts(step);
        for (i, g) in gens.iter_mut().enumerate() {
            let xml = if round == 0 { g.xml() } else { g.step() };
            let url = format!("tdoc{i}.example.org/doc");
            temporal.put(&url, &xml, ts).expect("put");
            stratum.put(&url, &xml, ts).expect("put");
        }
        times.push(ts);
        step += 1;
    }
    TwinDb { temporal, stratum, times }
}

/// Times `f` over `iters` runs, returning mean microseconds. A warm-up
/// run precedes measurement.
pub fn time_us<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters.max(1) {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / iters.max(1) as f64
}

/// Prints a table row with fixed column widths.
pub fn row(cols: &[String]) {
    let mut line = String::new();
    for (i, c) in cols.iter().enumerate() {
        if i == 0 {
            line.push_str(&format!("{c:<18}"));
        } else {
            line.push_str(&format!("{c:>14}"));
        }
    }
    println!("  {line}");
}

/// Prints a table header row plus a rule.
pub fn header(title: &str, cols: &[&str]) {
    println!("\n{title}");
    row(&cols.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!("  {}", "-".repeat(18 + 14 * (cols.len().saturating_sub(1))));
}

/// Formats a float with 1 decimal.
pub fn fmt1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats bytes as KiB with 1 decimal.
pub fn kib(v: u64) -> String {
    format!("{:.1}", v as f64 / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twin_builders_agree_on_version_counts() {
        let twin = build_guides(GuideParams {
            docs: 2,
            restaurants: 5,
            versions: 4,
            ..Default::default()
        });
        let t_docs = twin.temporal.store().list().unwrap();
        assert_eq!(t_docs.len(), 2);
        assert_eq!(twin.stratum.doc_count(), 2);
        // Same number of stored versions on both sides (unchanged puts are
        // skipped identically).
        let t_versions: usize =
            t_docs.iter().map(|(d, _)| twin.temporal.store().versions(*d).unwrap().len()).sum();
        assert_eq!(t_versions, twin.stratum.version_count());
        assert_eq!(twin.times.len(), 5);
    }

    #[test]
    fn tdoc_builder_works() {
        let twin = build_tdocs(
            &TdocParams {
                docs: 2,
                versions: 3,
                cfg: DocGenConfig { items: 5, ..Default::default() },
                ..Default::default()
            },
            FtiMode::Versions,
        );
        assert_eq!(twin.temporal.store().list().unwrap().len(), 2);
    }

    #[test]
    fn timing_positive() {
        let us = time_us(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(us >= 0.0);
    }
}
