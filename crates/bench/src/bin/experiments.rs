//! The experiment harness: regenerates every table/figure of the
//! reproduction (see DESIGN.md §5 and EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --release -p txdb-bench --bin experiments            # all
//! cargo run --release -p txdb-bench --bin experiments -- e4 e5  # subset
//! ```
//!
//! The paper itself publishes no numbers — its only figure is the Figure 1
//! example database — so F1 checks exact *results* and E2–E12 measure the
//! performance claims the paper makes qualitatively (expected shapes are
//! recorded in EXPERIMENTS.md).

use txdb_base::{Eid, Interval, Timestamp, VersionId};
use txdb_bench::*;
use txdb_core::ops::lifetime::LifetimeStrategy;
use txdb_core::{Database, DbOptions};
use txdb_index::deltaindex::ChangeOp;
use txdb_index::fti::OccKind;
use txdb_index::maint::FtiMode;
use txdb_query::QueryExt;
use txdb_wgen::restaurant::{figure1_versions, GUIDE_URL};
use txdb_wgen::tdocgen::{DocGen, DocGenConfig};
use txdb_xml::pattern::{PatternNode, PatternTree};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);

    println!("txdb experiment harness — temporal XML query operators");
    println!("(paper: Nørvåg, \"Algorithms for Temporal Query Operators in XML Databases\")");

    if want("f1") {
        f1();
    }
    if want("e2") {
        e2();
    }
    if want("e3") {
        e3();
    }
    if want("e4") {
        e4();
    }
    if want("e5") {
        e5();
    }
    if want("e6") {
        e6();
    }
    if want("e7") {
        e7();
    }
    if want("e8") {
        e8();
    }
    if want("e9") {
        e9();
    }
    if want("e10") {
        e10();
    }
    if want("e12") {
        e12();
    }
    if want("e13") {
        e13();
    }
    println!("\ndone.");
}

fn check(label: &str, ok: bool) {
    println!("  [{}] {label}", if ok { "PASS" } else { "FAIL" });
    if !ok {
        std::process::exit(1);
    }
}

/// F1 — Figure 1 and the paper's example queries, checked exactly.
fn f1() {
    println!("\n== F1: Figure 1 + Q1/Q2/Q3 + §7.4 (exact results) ==");
    let db = Database::in_memory();
    for (ts, xml) in figure1_versions() {
        db.put(GUIDE_URL, &xml, ts).unwrap();
    }
    let now = Timestamp::from_date(2001, 2, 20);
    let q1 = db
        .query(r#"SELECT R FROM doc("guide.com/restaurants")[26/01/2001]//restaurant R"#)
        .at(now)
        .run()
        .unwrap();
    check(
        "Q1 snapshot 26/01 returns Napoli(15) and Akropolis(13)",
        q1.to_xml()
            == "<results>\
                <result><restaurant><name>Napoli</name><price>15</price></restaurant></result>\
                <result><restaurant><name>Akropolis</name><price>13</price></restaurant></result>\
                </results>",
    );
    let q2 = db
        .query(r#"SELECT COUNT(R) FROM doc("guide.com/restaurants")[26/01/2001]//restaurant R"#)
        .at(now)
        .run()
        .unwrap();
    check("Q2 count = 2", q2.rows[0][0].as_text() == "2");
    check(
        "Q2 performed zero reconstructions (the paper's delta-storage claim)",
        q2.stats.reconstructions == 0,
    );
    let q3 = db
        .query(
            r#"SELECT TIME(R), R/price FROM doc("guide.com/restaurants")[EVERY]//restaurant R
               WHERE R/name = "Napoli""#,
        )
        .at(now)
        .run()
        .unwrap();
    check("Q3 price history has 3 rows (one per version)", q3.len() == 3);
    check(
        "Q3 shows 15 and 18",
        q3.to_xml().contains("<price>15</price>") && q3.to_xml().contains("<price>18</price>"),
    );
    let q74 = db
        .query(
            r#"SELECT R1/name
               FROM doc("guide.com/restaurants")[10/01/2001]//restaurant R1,
                    doc("guide.com/restaurants")//restaurant R2
               WHERE R1/name = R2/name AND R1/price < R2/price"#,
        )
        .at(now)
        .run()
        .unwrap();
    check(
        "§7.4 price-increase join returns exactly Napoli",
        q74.to_xml() == "<results><result><name>Napoli</name></result></results>",
    );
}

/// E2 — snapshot query latency vs history length: temporal FTI vs stratum.
fn e2() {
    println!("\n== E2: snapshot pattern query (Q1 shape) vs history length ==");
    header(
        "selective TPatternScan at mid-history, 100 docs × 25 restaurants",
        &["versions", "fti@t µs", "stratum@t µs", "fti-now µs", "stratum-now µs"],
    );
    // A selective pattern: one specific restaurant name per guide.
    let pattern = PatternTree::new(
        PatternNode::tag("restaurant")
            .project()
            .child(PatternNode::tag("name").word("royal").word("napoli").word("3")),
    );
    for versions in [4usize, 16, 64, 128] {
        let twin = build_guides(GuideParams { docs: 100, versions, ..Default::default() });
        let mid = twin.times[twin.times.len() / 2];
        let t_fti = time_us(20, || {
            std::hint::black_box(twin.temporal.tpattern_scan(None, &pattern, mid).unwrap());
        });
        let t_str = time_us(20, || {
            std::hint::black_box(twin.stratum.pattern_at(&pattern, mid));
        });
        // Current-version scans hit the open lists only: flat in history.
        let t_fti_now = time_us(20, || {
            std::hint::black_box(twin.temporal.pattern_scan(None, &pattern).unwrap());
        });
        let t_str_now = time_us(20, || {
            std::hint::black_box(twin.stratum.pattern_current(&pattern));
        });
        row(&[versions.to_string(), fmt1(t_fti), fmt1(t_str), fmt1(t_fti_now), fmt1(t_str_now)]);
    }
    println!("  (fti-now uses the open-posting lists: flat in history length)");
}

/// E3 — Q2's claim: aggregates over delta storage cost nothing extra.
fn e3() {
    println!("\n== E3: COUNT over snapshot — no reconstruction vs reconstruct-then-count ==");
    header(
        "COUNT(restaurants) at the OLDEST version (worst case for deltas)",
        &["versions", "count µs", "reconstr.", "recon µs", "deltas read"],
    );
    for versions in [8usize, 32, 128] {
        let twin = build_guides(GuideParams { docs: 5, versions, ..Default::default() });
        let oldest = twin.times[0];
        let now = *twin.times.last().unwrap();
        let q = format!(r#"SELECT COUNT(R) FROM doc("*")[{}]//restaurant R"#, oldest.micros());
        // Index-path COUNT.
        let res = twin.temporal.query(&q).at(now).run().unwrap();
        assert_eq!(res.stats.reconstructions, 0);
        let t_count = time_us(10, || {
            std::hint::black_box(twin.temporal.query(&q).at(now).run().unwrap());
        });
        // Reconstruct-then-count (what a system without the temporal FTI
        // must do): rebuild each doc's oldest version and match.
        let docs = twin.temporal.store().list().unwrap();
        let mut deltas_total = 0usize;
        let t_recon = time_us(3, || {
            deltas_total = 0;
            for (d, _) in &docs {
                let (tree, k) =
                    twin.temporal.store().version_tree_counted(*d, VersionId(0)).unwrap();
                deltas_total += k;
                std::hint::black_box(txdb_xml::pattern::match_tree(
                    &tree,
                    &PatternTree::new(PatternNode::tag("restaurant").project()),
                ));
            }
        });
        row(&[
            versions.to_string(),
            fmt1(t_count),
            "0".into(),
            fmt1(t_recon),
            deltas_total.to_string(),
        ]);
    }
}

/// E4 — Reconstruct cost vs chain length, with the snapshot-interval sweep.
fn e4() {
    println!("\n== E4: Reconstruct(TEID) cost vs delta-chain length (§7.3.3) ==");
    header(
        "reconstruct version v of a 256-version document",
        &["snapshot k", "v=255", "v=190", "v=125", "v=61", "v=0"],
    );
    for snap in [None, Some(64u32), Some(16), Some(4)] {
        let mut opts = DbOptions::new();
        if let Some(k) = snap {
            opts = opts.snapshot_every(k);
        }
        let db = opts.open().unwrap();
        let mut gen = DocGen::new(
            DocGenConfig { items: 40, changes_per_version: 4, ..Default::default() },
            3,
        );
        db.put("d", &gen.xml(), step_ts(0)).unwrap();
        for i in 1..=255u64 {
            db.put("d", &gen.step(), step_ts(i)).unwrap();
        }
        let doc = db.store().doc_id("d").unwrap().unwrap();
        let nvers = db.store().versions(doc).unwrap().len() as u32;
        let mut cols = vec![match snap {
            None => "none".to_string(),
            Some(k) => k.to_string(),
        }];
        for target in [255u32, 190, 125, 61, 0] {
            let v = VersionId(target.min(nvers - 1));
            let (_, deltas) = db.store().version_tree_counted(doc, v).unwrap();
            let us = time_us(5, || {
                std::hint::black_box(db.store().version_tree(doc, v).unwrap());
            });
            cols.push(format!("{} ({}d)", fmt1(us), deltas));
        }
        row(&cols);
    }
    println!("  (cells: mean µs, and number of completed deltas applied)");
}

/// E5 — CreTime: delta traversal vs EID-time index (§7.3.6 crossover).
fn e5() {
    println!("\n== E5: CreTime strategies — delta traversal vs EID index (§7.3.6) ==");
    let db = Database::in_memory();
    let mut gen = DocGen::new(
        DocGenConfig {
            items: 30,
            changes_per_version: 3,
            w_update: 5,
            w_insert: 3,
            w_delete: 0,
            ..Default::default()
        },
        11,
    );
    db.put("d", &gen.xml(), step_ts(0)).unwrap();
    let versions = 128u64;
    for i in 1..=versions {
        db.put("d", &gen.step(), step_ts(i)).unwrap();
    }
    let doc = db.store().doc_id("d").unwrap().unwrap();
    let now = step_ts(versions);
    let cur = db.store().current_tree(doc).unwrap();
    header(
        "CreTime of an element probed from the current version",
        &["element age", "traverse µs", "deltas read", "index µs"],
    );
    // Pick elements created at different versions: oldest item vs items
    // inserted later (higher xids were created later).
    let mut items: Vec<(txdb_base::Xid, Timestamp)> = cur
        .iter()
        .filter(|&n| cur.node(n).name() == Some("item"))
        .map(|n| (cur.node(n).xid, Timestamp::ZERO))
        .collect();
    items.sort();
    let idx = db.indexes().eid_index().unwrap();
    for (label, pick) in
        [("oldest", 0usize), ("median", items.len() / 2), ("newest", items.len() - 1)]
    {
        let (xid, _) = items[pick];
        let eid = Eid::new(doc, xid);
        let teid = eid.at(now);
        let (t_create, deltas) = db.cre_time_counted(teid, LifetimeStrategy::Traverse).unwrap();
        let _ = idx.lifetime(eid).unwrap();
        let us_trav = time_us(5, || {
            std::hint::black_box(db.cre_time(teid, LifetimeStrategy::Traverse).unwrap());
        });
        let us_idx = time_us(50, || {
            std::hint::black_box(db.cre_time(teid, LifetimeStrategy::Index).unwrap());
        });
        let age_versions =
            db.store().versions(doc).unwrap().iter().filter(|e| e.ts >= t_create).count();
        row(&[
            format!("{label} ({age_versions}v)"),
            fmt1(us_trav),
            deltas.to_string(),
            fmt1(us_idx),
        ]);
    }
}

/// E6 — TPatternScanAll (Q3 shape) vs stratum full scan.
fn e6() {
    println!("\n== E6: all-versions query (Q3 shape) — temporal join vs stratum scan ==");
    header(
        "price history of one restaurant, 10 docs × 25 restaurants",
        &["versions", "fti µs", "stratum µs", "speedup", "rows"],
    );
    let pattern = PatternTree::new(
        PatternNode::tag("restaurant").project().child(PatternNode::tag("name").word("napoli")),
    );
    for versions in [4usize, 16, 64, 256] {
        let twin = build_guides(GuideParams { versions, ..Default::default() });
        let rows = twin.temporal.tpattern_scan_all(None, &pattern).unwrap().len();
        let t_fti = time_us(10, || {
            std::hint::black_box(twin.temporal.tpattern_scan_all(None, &pattern).unwrap());
        });
        let t_str = time_us(3, || {
            std::hint::black_box(twin.stratum.pattern_all(&pattern));
        });
        row(&[
            versions.to_string(),
            fmt1(t_fti),
            fmt1(t_str),
            format!("{:.1}x", t_str / t_fti.max(0.001)),
            rows.to_string(),
        ]);
    }
}

/// E7 — the §7.2 indexing-alternatives ablation.
fn e7() {
    println!("\n== E7: FTI alternatives ablation (§7.2): versions / deltas / both ==");
    header(
        "same TDocGen stream (5 docs × 40 versions)",
        &["mode", "build ms", "idx KiB", "snap-q µs", "change-q µs"],
    );
    let params = TdocParams {
        docs: 5,
        versions: 40,
        cfg: DocGenConfig { items: 40, changes_per_version: 5, ..Default::default() },
        ..Default::default()
    };
    let snap_pattern =
        PatternTree::new(PatternNode::tag("text").word(DocGen::word_at_rank(3)).project());
    for (label, mode) in
        [("versions", FtiMode::Versions), ("deltas", FtiMode::Deltas), ("both", FtiMode::Both)]
    {
        let build_start = std::time::Instant::now();
        let twin = build_tdocs(&params, mode);
        let build_ms = build_start.elapsed().as_secs_f64() * 1e3;
        let mid = twin.times[twin.times.len() / 2];
        let idx_bytes = twin.temporal.indexes().fti().approx_bytes()
            + twin.temporal.indexes().delta_index().approx_bytes();
        // Snapshot query: only meaningful with version-content postings.
        let snap_us = if matches!(mode, FtiMode::Versions | FtiMode::Both) {
            fmt1(time_us(20, || {
                std::hint::black_box(
                    twin.temporal.tpattern_scan(None, &snap_pattern, mid).unwrap(),
                );
            }))
        } else {
            "n/a".to_string()
        };
        // Change query: "when was word X deleted" — delta index when
        // available, otherwise a full FTI_lookup_H post-filtered by range
        // ends (the expensive way).
        let word = DocGen::word_at_rank(3);
        let change_us = if matches!(mode, FtiMode::Deltas | FtiMode::Both) {
            fmt1(time_us(20, || {
                std::hint::black_box(
                    twin.temporal.indexes().delta_index().find(&word, Some(ChangeOp::Update)),
                );
            }))
        } else {
            fmt1(time_us(20, || {
                let fti = twin.temporal.indexes().fti();
                let hits: usize =
                    fti.lookup_h(&word, OccKind::Word).iter().filter(|p| !p.is_open()).count();
                std::hint::black_box(hits);
            }))
        };
        row(&[
            label.to_string(),
            format!("{build_ms:.0}"),
            kib(idx_bytes as u64),
            snap_us,
            change_us,
        ]);
    }
    println!("  (change-q without a delta index approximates via closed-posting scan)");
}

/// E8 — storage space: complete versions vs deltas vs deltas+snapshots.
fn e8() {
    println!("\n== E8: storage space vs change ratio (complete / deltas / +snapshots) ==");
    header(
        "5 docs × 64 versions of ~50-item documents",
        &["changes/ver", "complete KiB", "delta KiB", "ratio", "+snap/8 KiB"],
    );
    for changes in [1usize, 5, 15, 40] {
        let cfg = DocGenConfig { items: 50, changes_per_version: changes, ..Default::default() };
        let p = TdocParams { docs: 5, versions: 64, cfg: cfg.clone(), ..Default::default() };
        let twin = build_tdocs(&p, FtiMode::Versions);
        let complete = twin.stratum.space_bytes() as u64;
        let s = twin.temporal.store().space_stats().unwrap();
        let deltas = s.delta_bytes + s.current_bytes;
        // With snapshots every 8 versions.
        let p_snap = TdocParams { snapshot_every: Some(8), ..p };
        let twin_snap = build_tdocs(&p_snap, FtiMode::Versions);
        let s2 = twin_snap.temporal.store().space_stats().unwrap();
        let with_snap = s2.delta_bytes + s2.current_bytes + s2.snapshot_bytes;
        row(&[
            changes.to_string(),
            kib(complete),
            kib(deltas),
            format!("{:.2}", deltas as f64 / complete as f64),
            kib(with_snap),
        ]);
    }
    println!("  (ratio = delta storage / complete-version storage; <1 favours deltas)");
}

/// E9 — DocHistory / ElementHistory cost vs interval length.
fn e9() {
    println!("\n== E9: DocHistory / ElementHistory vs interval length (§7.3.4-5) ==");
    let db = Database::in_memory();
    let mut gen = DocGen::new(
        DocGenConfig { items: 30, changes_per_version: 3, w_delete: 0, ..Default::default() },
        5,
    );
    let total = 128u64;
    db.put("d", &gen.xml(), step_ts(0)).unwrap();
    for i in 1..=total {
        db.put("d", &gen.step(), step_ts(i)).unwrap();
    }
    let doc = db.store().doc_id("d").unwrap().unwrap();
    let cur = db.store().current_tree(doc).unwrap();
    let item_eid = {
        let n = cur.iter().find(|&n| cur.node(n).name() == Some("item")).unwrap();
        Eid::new(doc, cur.node(n).xid)
    };
    header(
        "history of the last `len` versions of a 128-version document",
        &["interval", "versions", "doc-hist µs", "deltas", "elem-hist µs"],
    );
    for len in [4u64, 16, 64, 128] {
        let iv = Interval::new(step_ts(total - len + 1), Timestamp::FOREVER);
        let (h, deltas) = db.doc_history_counted(doc, iv).unwrap();
        let n = h.len();
        let t_doc = time_us(3, || {
            std::hint::black_box(db.doc_history(doc, iv).unwrap());
        });
        let t_elem = time_us(3, || {
            std::hint::black_box(db.element_history(item_eid, iv).unwrap());
        });
        row(&[format!("last {len}"), n.to_string(), fmt1(t_doc), deltas.to_string(), fmt1(t_elem)]);
    }
}

/// E10 — Diff cost and delta size vs document size / change ratio.
fn e10() {
    println!("\n== E10: diff cost and delta size (§7.3.8) ==");
    header(
        "diff two versions of an n-item document",
        &["items", "changes", "diff µs", "delta ops", "delta KiB"],
    );
    for (items, changes) in [(20usize, 2usize), (100, 2), (100, 20), (500, 10), (500, 100)] {
        let cfg = DocGenConfig { items, changes_per_version: changes, ..Default::default() };
        let mut gen = DocGen::new(cfg, 17);
        let old_xml = gen.xml();
        let new_xml = gen.step();
        let old = {
            let mut t = txdb_xml::parse::parse_document(&old_xml).unwrap();
            let ids: Vec<_> = t.iter().collect();
            for (i, id) in ids.iter().enumerate() {
                t.node_mut(*id).xid = txdb_base::Xid(i as u64 + 1);
            }
            t
        };
        let mut ops = 0;
        let mut bytes = 0;
        let us = time_us(5, || {
            let mut new = txdb_xml::parse::parse_document(&new_xml).unwrap();
            let mut next = txdb_base::Xid(100_000);
            let res = txdb_delta::diff_trees(
                &old,
                &mut new,
                &mut next,
                VersionId(0),
                step_ts(0),
                step_ts(1),
            )
            .unwrap();
            ops = res.delta.ops.len();
            bytes = res.delta.weight();
            std::hint::black_box(res);
        });
        row(&[
            items.to_string(),
            changes.to_string(),
            fmt1(us),
            ops.to_string(),
            kib(bytes as u64),
        ]);
    }
}

/// E12 — end-to-end query latency for the three paper query shapes.
fn e12() {
    println!("\n== E12: end-to-end query latency (language pipeline) ==");
    let twin =
        build_guides(GuideParams { docs: 10, restaurants: 25, versions: 32, ..Default::default() });
    let db = &twin.temporal;
    let mid = twin.times[twin.times.len() / 2];
    let now = *twin.times.last().unwrap();
    let queries: Vec<(&str, String)> = vec![
        (
            "Q1 snapshot",
            format!(r#"SELECT R FROM doc("*")[{}]//restaurant R WHERE R/name = "Golden Napoli 0""#, mid.micros()),
        ),
        (
            "Q2 count",
            format!(r#"SELECT COUNT(R) FROM doc("*")[{}]//restaurant R"#, mid.micros()),
        ),
        (
            "Q3 history",
            r#"SELECT TIME(R), R/price FROM doc("*")[EVERY]//restaurant R WHERE R/name = "Golden Napoli 0""#.to_string(),
        ),
        (
            "§7.4 join",
            format!(
                r#"SELECT R1/name FROM doc("guide0.example.org/restaurants")[{}]//restaurant R1,
                   doc("guide0.example.org/restaurants")//restaurant R2
                   WHERE R1/name = R2/name AND R1/price < R2/price"#,
                mid.micros()
            ),
        ),
    ];
    header("10 docs × 25 restaurants × 32 versions", &["query", "µs", "rows", "reconstr."]);
    for (label, q) in &queries {
        let res = db.query(q).at(now).run().unwrap();
        let us = time_us(10, || {
            std::hint::black_box(db.query(q).at(now).run().unwrap());
        });
        row(&[
            label.to_string(),
            fmt1(us),
            res.len().to_string(),
            res.stats.reconstructions.to_string(),
        ]);
    }
}

/// E13 — §8 algebraic rewriting: TIME(R) lower bounds pushed into the
/// EVERY scan as a version-interval restriction.
fn e13() {
    println!("\n== E13: §8 algebraic rewriting — TIME(R) >= t pushdown into [EVERY] ==");
    header(
        "history query restricted to the most recent week, 10 docs",
        &["versions", "pushed µs", "filtered µs", "speedup", "rows"],
    );
    for versions in [32usize, 128, 512] {
        let twin = build_guides(GuideParams { docs: 10, versions, ..Default::default() });
        let db = &twin.temporal;
        let now = *twin.times.last().unwrap();
        let horizon = twin.times[twin.times.len() - 8];
        // Pushdown-recognisable form.
        let pushed = format!(
            r#"SELECT TIME(R), R/price FROM doc("*")[EVERY]//restaurant R
               WHERE R/name = "Golden Napoli 0" AND TIME(R) >= {}"#,
            horizon.micros()
        );
        // Semantically equal but opaque to the rewriter (NOT … <).
        let filtered = format!(
            r#"SELECT TIME(R), R/price FROM doc("*")[EVERY]//restaurant R
               WHERE R/name = "Golden Napoli 0" AND NOT TIME(R) < {}"#,
            horizon.micros()
        );
        let rows = db.query(&pushed).at(now).run().unwrap();
        let check = db.query(&filtered).at(now).run().unwrap();
        assert_eq!(rows.to_xml(), check.to_xml(), "rewriting must not change results");
        let t_pushed = time_us(5, || {
            std::hint::black_box(db.query(&pushed).at(now).run().unwrap());
        });
        let t_filtered = time_us(5, || {
            std::hint::black_box(db.query(&filtered).at(now).run().unwrap());
        });
        row(&[
            versions.to_string(),
            fmt1(t_pushed),
            fmt1(t_filtered),
            format!("{:.1}x", t_filtered / t_pushed.max(0.001)),
            rows.len().to_string(),
        ]);
    }
}

// E11 (PreviousTS/NextTS/CurrentTS micro-costs) lives in the Criterion
// bench `version_ts`; the operations are single delta-index lookups and
// too fast for the wall-clock tables here.
