//! Checkpointed-vs-replay open benchmark for the persistent index
//! checkpoints.
//!
//! Builds one persistent TDocGen database, closes it cleanly (which
//! writes the index checkpoint), then times `Database::open` two ways:
//! **warm** loads the serialized indexes and replays nothing; **cold**
//! opens with checkpoints disabled and replays every version of every
//! document — the O(history) behaviour all opens had before the
//! checkpoint existed. Timings go to `BENCH_open.json` in the current
//! directory.
//!
//! ```sh
//! cargo run --release -p txdb-bench --bin open_bench
//! ```

use std::time::Instant;

use txdb_bench::step_ts;
use txdb_core::DbOptions;
use txdb_storage::IndexCheckpointState;
use txdb_wgen::tdocgen::{DocGen, DocGenConfig};

const DOCS: usize = 6;
const VERSIONS: u64 = 64;
const SEED: u64 = 42;
const ROUNDS: usize = 5;

/// Builds the TDocGen workload into a fresh persistent database at `dir`
/// and closes it cleanly, leaving a checkpoint behind.
fn build(dir: &std::path::Path) {
    let _ = std::fs::remove_dir_all(dir);
    let db = DbOptions::at(dir).open().expect("open");
    for d in 0..DOCS {
        let mut gen = DocGen::new(
            DocGenConfig { items: 30, changes_per_version: 4, ..Default::default() },
            SEED + d as u64,
        );
        let url = format!("bench{d}.example.org/doc");
        db.put(&url, &gen.xml(), step_ts(0)).expect("put");
        for i in 1..=VERSIONS {
            db.put(&url, &gen.step(), step_ts(i)).expect("put");
        }
    }
    db.close().expect("close");
}

/// Opens the database `ROUNDS` times, asserting the expected recovery
/// path each time; returns (total µs, postings seen at the last open).
fn measure(dir: &std::path::Path, checkpoints: bool, want: IndexCheckpointState) -> (f64, usize) {
    let mut postings = 0;
    let start = Instant::now();
    for _ in 0..ROUNDS {
        let db = DbOptions::at(dir).index_checkpoints(checkpoints).open().expect("open");
        let r = &db.recovery_report().index_checkpoint;
        assert_eq!(r.state, want, "unexpected recovery path (note: {:?})", r.note);
        postings = db.indexes().fti().posting_count();
        std::hint::black_box(&db);
        // Drop without close(): the measured open must not be followed by
        // a checkpoint rewrite that would perturb the next round.
    }
    (start.elapsed().as_secs_f64() * 1e6, postings)
}

fn main() {
    println!("== open_bench: checkpointed open vs full-history replay ==");
    let dir = std::env::temp_dir().join(format!("txdb-open-bench-{}", std::process::id()));
    build(&dir);

    // Cold first so the OS page cache is equally warm for both passes
    // (the cold pass touches every delta page; the warm pass only the
    // checkpoint chain).
    let (cold_us, cold_postings) = measure(&dir, false, IndexCheckpointState::Absent);
    let (warm_us, warm_postings) = measure(&dir, true, IndexCheckpointState::Loaded);
    assert_eq!(cold_postings, warm_postings, "checkpoint-loaded index diverges from full replay");

    let versions = DOCS * (VERSIONS as usize + 1);
    let speedup = cold_us / warm_us.max(0.001);
    println!("  cold: {:.0} µs total ({ROUNDS} opens, {versions} versions replayed each)", cold_us);
    println!("  warm: {:.0} µs total ({ROUNDS} opens, 0 versions replayed)", warm_us);
    println!("  speedup: {speedup:.1}x  ({cold_postings} postings either way)");
    if speedup < 5.0 {
        println!("  WARNING: checkpointed open below the 5x target");
    }

    let generated_at = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    // One extra untimed checkpointed open, instrumented: its registry
    // snapshot reports the engine-level counters of an open (buffer I/O,
    // checkpoint.load_us, index.open_us …) without perturbing the timings.
    let engine = {
        let db = DbOptions::at(&dir).index_checkpoints(true).open().expect("open");
        db.store().update_derived_metrics();
        db.metrics().snapshot().to_json()
    };
    let json = format!(
        "{{\n  \"generated_at\": {generated_at},\n  \"seed\": {SEED},\n  \"workload\": {{\n    \"generator\": \"tdocgen\",\n    \"docs\": {DOCS},\n    \"versions_per_doc\": {},\n    \"rounds\": {ROUNDS}\n  }},\n  \"cold\": {{\n    \"checkpoints\": false,\n    \"total_us\": {cold_us:.1},\n    \"per_open_us\": {:.1},\n    \"versions_replayed_per_open\": {versions}\n  }},\n  \"warm\": {{\n    \"checkpoints\": true,\n    \"total_us\": {warm_us:.1},\n    \"per_open_us\": {:.1},\n    \"versions_replayed_per_open\": 0\n  }},\n  \"postings\": {cold_postings},\n  \"speedup\": {speedup:.2},\n  \"engine_metrics\": {}\n}}\n",
        VERSIONS + 1,
        cold_us / ROUNDS as f64,
        warm_us / ROUNDS as f64,
        engine.trim_end(),
    );
    std::fs::write("BENCH_open.json", &json).expect("write BENCH_open.json");
    println!("  wrote BENCH_open.json");
    let _ = std::fs::remove_dir_all(&dir);
}
