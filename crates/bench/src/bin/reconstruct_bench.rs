//! Cold-vs-warm reconstruction benchmark for the materialized-version
//! cache.
//!
//! Builds two identical TDocGen databases — one with the cache disabled,
//! one with a generous budget — reconstructs the same spread of historical
//! versions from both, and writes the timings to `BENCH_reconstruct.json`
//! in the current directory. The warm store answers repeat reconstructions
//! from cached materialisations (zero deltas applied); the cold store
//! walks the full §7.3.3 delta chains every time.
//!
//! ```sh
//! cargo run --release -p txdb-bench --bin reconstruct_bench
//! ```

use std::time::Instant;

use txdb_base::{DocId, VersionId};
use txdb_bench::step_ts;
use txdb_core::{Database, DbOptions};
use txdb_wgen::tdocgen::{DocGen, DocGenConfig};

const DOCS: usize = 6;
const VERSIONS: u64 = 64;
const ROUNDS: usize = 20;
const SEED: u64 = 42;

/// Builds the TDocGen workload into a database with the given cache budget.
fn build(cache_bytes: usize) -> Database {
    let db = DbOptions::new().cache_bytes(cache_bytes).open().expect("open");
    for d in 0..DOCS {
        let mut gen = DocGen::new(
            DocGenConfig { items: 30, changes_per_version: 4, ..Default::default() },
            SEED + d as u64,
        );
        let url = format!("bench{d}.example.org/doc");
        db.put(&url, &gen.xml(), step_ts(0)).expect("put");
        for i in 1..=VERSIONS {
            db.put(&url, &gen.step(), step_ts(i)).expect("put");
        }
    }
    db
}

/// The versions every measurement touches: old, mid and recent cuts of
/// every document's history (old versions sit at the end of long backward
/// delta chains — the §7.3.3 worst case).
fn targets(db: &Database) -> Vec<(DocId, VersionId)> {
    let mut out = Vec::new();
    for (doc, _) in db.store().list().expect("list") {
        let n = db.store().versions(doc).expect("versions").len() as u32;
        for frac in [0u32, 1, 2, 3] {
            out.push((doc, VersionId((n - 1) * frac / 4)));
        }
    }
    out
}

/// Reconstructs every target `ROUNDS` times; returns (total µs, deltas).
fn measure(db: &Database, targets: &[(DocId, VersionId)]) -> (f64, usize) {
    let mut deltas = 0usize;
    let start = Instant::now();
    for _ in 0..ROUNDS {
        for &(doc, v) in targets {
            let (tree, k) = db.store().version_tree_counted(doc, v).expect("reconstruct");
            deltas += k;
            std::hint::black_box(tree);
        }
    }
    (start.elapsed().as_secs_f64() * 1e6, deltas)
}

fn main() {
    println!("== reconstruct_bench: cold (no cache) vs warm (cached) ==");
    let cold_db = build(0);
    let warm_db = build(64 << 20);
    let cold_targets = targets(&cold_db);
    let warm_targets = targets(&warm_db);
    let reconstructions = cold_targets.len() * ROUNDS;

    let (cold_us, cold_deltas) = measure(&cold_db, &cold_targets);

    // Warm pass: prefetch in parallel (populates the cache), then measure
    // repeat reconstructions — the steady state of a query session.
    warm_db.prefetch_versions(&warm_targets);
    let (warm_us, warm_deltas) = measure(&warm_db, &warm_targets);

    let speedup = cold_us / warm_us.max(0.001);
    let (hits, misses, inserts, evictions, invalidations) =
        warm_db.store().vcache_stats().snapshot();
    let resident = warm_db.store().vcache().resident_bytes();

    println!(
        "  cold: {:.0} µs total ({} reconstructions, {} deltas applied)",
        cold_us, reconstructions, cold_deltas
    );
    println!(
        "  warm: {:.0} µs total ({} reconstructions, {} deltas applied)",
        warm_us, reconstructions, warm_deltas
    );
    println!("  speedup: {speedup:.1}x  (cache: {hits} hits, {misses} misses, {resident} resident bytes)");
    if speedup < 2.0 {
        println!("  WARNING: warm speedup below the 2x target");
    }

    let generated_at = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    // Engine-level counters from the warm store's metrics registry
    // (reconstruct.deltas_applied, vcache traffic, buffer hit ratio …).
    warm_db.store().update_derived_metrics();
    let engine = warm_db.metrics().snapshot().to_json();
    let json = format!(
        "{{\n  \"generated_at\": {generated_at},\n  \"seed\": {SEED},\n  \"workload\": {{\n    \"generator\": \"tdocgen\",\n    \"docs\": {DOCS},\n    \"versions_per_doc\": {},\n    \"targets_per_doc\": 4,\n    \"rounds\": {ROUNDS},\n    \"reconstructions\": {reconstructions}\n  }},\n  \"cold\": {{\n    \"cache_bytes\": 0,\n    \"total_us\": {cold_us:.1},\n    \"per_reconstruction_us\": {:.2},\n    \"deltas_applied\": {cold_deltas}\n  }},\n  \"warm\": {{\n    \"cache_bytes\": {},\n    \"total_us\": {warm_us:.1},\n    \"per_reconstruction_us\": {:.2},\n    \"deltas_applied\": {warm_deltas},\n    \"cache_hits\": {hits},\n    \"cache_misses\": {misses},\n    \"cache_inserts\": {inserts},\n    \"cache_evictions\": {evictions},\n    \"cache_invalidations\": {invalidations},\n    \"resident_bytes\": {resident}\n  }},\n  \"speedup\": {speedup:.2},\n  \"engine_metrics\": {}\n}}\n",
        VERSIONS + 1,
        cold_us / reconstructions as f64,
        64u64 << 20,
        warm_us / reconstructions as f64,
        engine.trim_end(),
    );
    std::fs::write("BENCH_reconstruct.json", &json).expect("write BENCH_reconstruct.json");
    println!("  wrote BENCH_reconstruct.json");
}
