//! Over-the-wire throughput: wire clients versus the in-process engine.
//!
//! Two sections, written to `BENCH_server.json`:
//!
//! * **puts** — a fresh durable (`wal_sync`) store behind a server per
//!   client count; a fixed total number of tiny `PUT`s is split across
//!   1/2/4/8 wire clients writing disjoint documents. Each client is a
//!   session thread on the server, so concurrent wire commits funnel
//!   into the WAL group commit exactly like in-process threads — put
//!   throughput should rise with client count, and the
//!   `wal.group_commit.batch_size` histogram must sum to the commit
//!   count (every wire commit crosses exactly one fsync barrier).
//! * **queries** — one shared corpus, 1/2/4/8 wire clients streaming
//!   snapshot-anchored queries at skewed historical timestamps. Adds
//!   the serial in-process rate as the no-wire baseline, so the JSON
//!   records what the transport costs.
//! * **latency** — per-command p50/p95/p99 from the server's
//!   `server.cmd.*_us` histograms (exact sums, log₂-bucketed tails).
//! * **tracing** — a 1-client traced-vs-untraced A/B, plus a comparison
//!   of the untraced rate against the previous `BENCH_server.json` (the
//!   pre-tracing baseline): with tracing off the instrumentation is one
//!   thread-local read per span, and a full (non-quick) run asserts the
//!   cost stays under 2%.
//!
//! ```sh
//! cargo run --release -p txdb-bench --bin server_bench
//! ```
//!
//! Set `SERVER_BENCH_QUICK=1` for a small run (CI smoke).

use std::sync::Arc;
use std::time::Instant;

use txdb_base::obs::HistogramSnapshot;
use txdb_bench::step_ts;
use txdb_client::json::Json;
use txdb_client::Client;
use txdb_core::{Database, DbOptions};
use txdb_query::QueryExt;
use txdb_server::{Server, ServerConfig};

const CLIENT_COUNTS: &[usize] = &[1, 2, 4, 8];

fn start_server(db: Arc<Database>) -> Server {
    Server::start(db, ServerConfig::default()).expect("server start")
}

/// One wire-commit run at a fixed client count.
struct PutRun {
    clients: usize,
    puts: u64,
    elapsed_us: f64,
    puts_per_sec: f64,
    fsyncs: u64,
    mean_batch: f64,
    /// Per-command latency for this run (`server.cmd.put_us`).
    latency: HistogramSnapshot,
}

/// Renders one `server.cmd.*_us` summary as a JSON object fragment.
fn latency_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{ \"count\": {}, \"mean_us\": {:.1}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {} }}",
        h.count,
        h.mean(),
        h.p50,
        h.p95,
        h.p99,
        h.max
    )
}

fn bench_wire_puts(clients: usize, total_puts: u64) -> PutRun {
    let per_client = total_puts / clients as u64;
    let puts = per_client * clients as u64;
    let dir =
        std::env::temp_dir().join(format!("txdb-server-bench-{}c-{}", clients, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Arc::new(DbOptions::at(&dir).wal_sync(true).open().expect("open"));
    let server = start_server(Arc::clone(&db));
    let addr = server.addr();
    let start = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..per_client {
                    let r = client
                        .put(
                            &format!("doc-{c}"),
                            &format!("<a><v>{i}</v></a>"),
                            Some(step_ts(i + 1).micros()),
                        )
                        .expect("wire put");
                    assert!(r.changed);
                }
            });
        }
    });
    let elapsed_us = start.elapsed().as_secs_f64() * 1e6;
    let h = db
        .metrics()
        .snapshot()
        .histogram("wal.group_commit.batch_size")
        .expect("wal.group_commit.batch_size histogram");
    assert_eq!(h.sum, puts, "every wire commit crosses exactly one fsync barrier");
    let latency = db
        .metrics()
        .snapshot()
        .histogram("server.cmd.put_us")
        .expect("server.cmd.put_us histogram");
    server.shutdown().expect("drain");
    let _ = std::fs::remove_dir_all(&dir);
    PutRun {
        clients,
        puts,
        elapsed_us,
        puts_per_sec: puts as f64 / (elapsed_us / 1e6),
        fsyncs: h.count,
        mean_batch: h.sum as f64 / h.count.max(1) as f64,
        latency,
    }
}

fn query_at(k: usize, c: usize, versions: u64) -> (String, u64) {
    let v = ((k * 7 + c * 13) % versions as usize) as u64;
    (r#"SELECT R/n FROM doc("d")//log R"#.to_string(), step_ts(v * 10 + 5).micros())
}

fn bench_wire_queries(
    addr: std::net::SocketAddr,
    clients: usize,
    queries: usize,
    versions: u64,
) -> f64 {
    let start = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for k in 0..queries {
                    let (q, at) = query_at(k, c, versions);
                    let r = client.query(&q, Some(at)).expect("wire query");
                    assert_eq!(r.rows.len(), 1, "snapshot query must hit exactly one version");
                    std::hint::black_box(&r);
                }
            });
        }
    });
    (clients * queries) as f64 / start.elapsed().as_secs_f64()
}

/// One client streaming queries with `"trace":true`: every request pays
/// for span collection, operator metering and tree assembly.
fn bench_traced_queries(addr: std::net::SocketAddr, queries: usize, versions: u64) -> f64 {
    let mut client = Client::connect(addr).expect("connect");
    let start = Instant::now();
    for k in 0..queries {
        let (q, at) = query_at(k, 0, versions);
        let mut rows = 0usize;
        let (_explain, trace, _done) =
            client.query_stream_traced(&q, Some(at), true, |_| rows += 1).expect("traced query");
        assert_eq!(rows, 1);
        assert!(trace.is_some(), "traced query must return its span tree");
    }
    queries as f64 / start.elapsed().as_secs_f64()
}

fn bench_inprocess_queries(db: &Database, queries: usize, versions: u64) -> f64 {
    let start = Instant::now();
    for k in 0..queries {
        let (q, at) = query_at(k, 0, versions);
        let r = db.query(&q).at(txdb_base::Timestamp::from_micros(at)).run().expect("query");
        assert_eq!(r.len(), 1);
        std::hint::black_box(&r);
    }
    queries as f64 / start.elapsed().as_secs_f64()
}

/// The previous run's untraced 1-client wire rate, read from the
/// `BENCH_server.json` this run will overwrite. Quick runs are too noisy
/// to serve as a baseline and are ignored.
fn read_baseline_1c_qps() -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_server.json").ok()?;
    let v = Json::parse(&text).ok()?;
    if v.get("quick").and_then(Json::as_bool) != Some(false) {
        return None;
    }
    v.get("queries")?
        .get("runs")
        .and_then(Json::as_arr)?
        .first()?
        .get("queries_per_sec")
        .and_then(Json::as_f64)
}

fn main() {
    let quick = std::env::var("SERVER_BENCH_QUICK").is_ok_and(|v| v == "1");
    let baseline_1c_qps = read_baseline_1c_qps();
    let total_puts: u64 = if quick { 64 } else { 640 };
    let rounds = if quick { 1 } else { 3 };
    let (versions, queries_per_client) = if quick { (16u64, 20usize) } else { (48, 120) };
    println!("== server_bench: over-the-wire puts and queries ==");
    println!("   puts: {total_puts} durable PUTs split over {CLIENT_COUNTS:?} wire clients, best of {rounds}");
    println!("   queries: {queries_per_client} snapshot QUERYs/client over {CLIENT_COUNTS:?} wire clients");

    // Warm-up, then interleaved best-of-N per client count (fsync
    // latency is spiky on shared boxes; see concurrency_bench).
    let _ = bench_wire_puts(2, total_puts.min(64));
    let mut put_runs: Vec<PutRun> =
        CLIENT_COUNTS.iter().map(|&c| bench_wire_puts(c, total_puts)).collect();
    for _ in 1..rounds {
        for (i, &c) in CLIENT_COUNTS.iter().enumerate() {
            let run = bench_wire_puts(c, total_puts);
            if run.puts_per_sec > put_runs[i].puts_per_sec {
                put_runs[i] = run;
            }
        }
    }
    for r in &put_runs {
        println!(
            "  puts {}c: {:.0} puts/s ({} puts, {:.0} µs, {} fsyncs, mean batch {:.1})",
            r.clients, r.puts_per_sec, r.puts, r.elapsed_us, r.fsyncs, r.mean_batch
        );
    }
    let put_base = put_runs.first().expect("1-client run").puts_per_sec;
    let put_at8 = put_runs.last().expect("8-client run").puts_per_sec;
    let put_speedup = put_at8 / put_base.max(0.001);
    println!("  put speedup 8c vs 1c: {put_speedup:.2}x");
    if !quick && put_speedup < 2.0 {
        println!("  WARNING: wire commits failed to benefit from group commit");
    }

    // Query corpus behind one long-lived server.
    let db = Arc::new(DbOptions::new().snapshot_every(8).open().expect("open"));
    for v in 0..versions {
        db.put("d", &format!("<log><n>{v}</n><w>alpha{v}</w></log>"), step_ts(v * 10))
            .expect("put");
    }
    let inprocess_qps = bench_inprocess_queries(&db, queries_per_client, versions);
    let server = start_server(Arc::clone(&db));
    let addr = server.addr();
    let _ = bench_wire_queries(addr, 2, queries_per_client.min(20), versions); // warm-up
    let mut query_runs: Vec<(usize, f64)> = CLIENT_COUNTS
        .iter()
        .map(|&c| (c, bench_wire_queries(addr, c, queries_per_client, versions)))
        .collect();
    for _ in 1..rounds {
        for (i, &c) in CLIENT_COUNTS.iter().enumerate() {
            let qps = bench_wire_queries(addr, c, queries_per_client, versions);
            if qps > query_runs[i].1 {
                query_runs[i].1 = qps;
            }
        }
    }
    println!("  queries in-process (serial, no wire): {inprocess_qps:.0} queries/s");
    for (c, qps) in &query_runs {
        println!("  queries {c}c: {qps:.0} queries/s");
    }
    let query_base = query_runs.first().expect("1-client run").1;
    let query_best = query_runs.iter().map(|&(_, q)| q).fold(0.0f64, f64::max);
    println!("  query speedup best vs 1c: {:.2}x", query_best / query_base.max(0.001));

    // Per-command latency, captured before the traced A/B so the
    // percentiles describe the untraced runs only.
    let query_latency = db
        .metrics()
        .snapshot()
        .histogram("server.cmd.query_us")
        .expect("server.cmd.query_us histogram");
    println!(
        "  query latency: p50={}µs p95={}µs p99={}µs over {} requests",
        query_latency.p50, query_latency.p95, query_latency.p99, query_latency.count
    );

    // Tracing A/B at one client: what `"trace":true` costs per request,
    // and — against the previous BENCH_server.json — what the dormant
    // instrumentation costs when tracing is off (one thread-local read
    // per span; a full run must stay within 2% of the baseline).
    let traced_qps = {
        let mut best = bench_traced_queries(addr, queries_per_client, versions);
        for _ in 1..rounds {
            best = best.max(bench_traced_queries(addr, queries_per_client, versions));
        }
        best
    };
    let traced_overhead_pct = (query_base - traced_qps) / query_base.max(0.001) * 100.0;
    println!("  traced 1c: {traced_qps:.0} queries/s ({traced_overhead_pct:+.1}% vs untraced)");
    let untraced_vs_baseline_pct = baseline_1c_qps.map(|base| (base - query_base) / base * 100.0);
    match (baseline_1c_qps, untraced_vs_baseline_pct) {
        (Some(base), Some(cost)) => {
            println!(
                "  untraced 1c vs previous baseline: {query_base:.0} vs {base:.0} queries/s \
                 ({cost:+.1}% cost)"
            );
            if !quick {
                assert!(
                    query_base >= base * 0.98,
                    "tracing-off overhead {cost:.1}% exceeds the 2% budget \
                     (untraced {query_base:.0} qps vs baseline {base:.0} qps)"
                );
            }
        }
        _ => println!("  (no full-run baseline in BENCH_server.json; overhead check skipped)"),
    }
    server.shutdown().expect("drain");
    assert_eq!(
        db.metrics().snapshot().gauge("db.active_snapshots"),
        Some(0),
        "all session and cursor pins released"
    );

    let generated_at = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let put_json = put_runs
        .iter()
        .map(|r| {
            format!(
                "      {{ \"clients\": {}, \"puts\": {}, \"elapsed_us\": {:.1}, \"puts_per_sec\": {:.1}, \"fsyncs\": {}, \"mean_batch\": {:.2}, \"latency_us\": {} }}",
                r.clients, r.puts, r.elapsed_us, r.puts_per_sec, r.fsyncs, r.mean_batch,
                latency_json(&r.latency)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let query_json = query_runs
        .iter()
        .map(|(c, qps)| format!("      {{ \"clients\": {c}, \"queries_per_sec\": {qps:.1} }}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let baseline_json = match baseline_1c_qps {
        Some(b) => format!("{b:.1}"),
        None => "null".into(),
    };
    let vs_baseline_json = match untraced_vs_baseline_pct {
        Some(p) => format!("{p:.2}"),
        None => "null".into(),
    };
    let engine = db.metrics().snapshot().to_json();
    let json = format!(
        "{{\n  \"generated_at\": {generated_at},\n  \"quick\": {quick},\n  \"puts\": {{\n    \"wal_sync\": true,\n    \"total_puts\": {total_puts},\n    \"runs\": [\n{put_json}\n    ],\n    \"speedup_8v1\": {put_speedup:.2}\n  }},\n  \"queries\": {{\n    \"corpus_versions\": {versions},\n    \"queries_per_client\": {queries_per_client},\n    \"inprocess_serial_qps\": {inprocess_qps:.1},\n    \"runs\": [\n{query_json}\n    ],\n    \"speedup_best_v1\": {:.2}\n  }},\n  \"latency\": {{\n    \"query_us\": {}\n  }},\n  \"tracing\": {{\n    \"untraced_1c_qps\": {query_base:.1},\n    \"traced_1c_qps\": {traced_qps:.1},\n    \"traced_overhead_pct\": {traced_overhead_pct:.2},\n    \"baseline_untraced_1c_qps\": {baseline_json},\n    \"untraced_vs_baseline_pct\": {vs_baseline_json}\n  }},\n  \"engine_metrics\": {}\n}}\n",
        query_best / query_base.max(0.001),
        latency_json(&query_latency),
        engine.trim_end(),
    );
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    println!("  wrote BENCH_server.json");
}
