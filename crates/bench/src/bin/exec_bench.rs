//! Streaming-executor benchmark: `LIMIT 1` early exit vs full
//! materialisation over a multi-thousand-version corpus.
//!
//! Builds an in-memory TDocGen database with thousands of document
//! versions, then times the same `[EVERY]` pattern query two ways:
//! **full** drains `db.query(q).run()` — every version expanded,
//! projected and reconstructed — while **limit1** pulls a single row
//! through `db.query(q).limit(1).stream()`, which early-exits the FTI
//! posting cursors after the first match chains through. The streamed
//! full drain also reports its buffered-row high-water mark (the
//! `exec.peak_rows_buffered` gauge): peak memory stays bounded by
//! candidate skeletons plus cached trees, well below the result size.
//! Results go to `BENCH_exec.json` in the current directory.
//!
//! ```sh
//! cargo run --release -p txdb-bench --bin exec_bench
//! ```
//!
//! Set `EXEC_BENCH_QUICK=1` for a small corpus (CI smoke).

use std::time::Instant;

use txdb_bench::step_ts;
use txdb_core::Database;
use txdb_query::QueryExt;
use txdb_wgen::tdocgen::{DocGen, DocGenConfig};

const SEED: u64 = 42;
const ROUNDS: usize = 3;

fn main() {
    let quick = std::env::var("EXEC_BENCH_QUICK").is_ok_and(|v| v == "1");
    let (docs, versions) = if quick { (2, 40u64) } else { (3, 500u64) };
    println!("== exec_bench: LIMIT 1 early exit vs full materialisation ==");
    println!("   corpus: {docs} docs x {} versions", versions + 1);

    let db = Database::in_memory();
    for d in 0..docs {
        let mut gen = DocGen::new(
            DocGenConfig { items: 24, changes_per_version: 3, ..Default::default() },
            SEED + d as u64,
        );
        let url = format!("bench{d}.example.org/doc");
        db.put(&url, &gen.xml(), step_ts(0)).expect("put");
        for i in 1..=versions {
            db.put(&url, &gen.step(), step_ts(i)).expect("put");
        }
    }
    let probe = step_ts(versions + 10);
    let q = r#"SELECT TIME(R) FROM doc("*")[EVERY]//item R"#;

    // Full materialisation: every version row is expanded, projected
    // (reconstructing its document version) and collected.
    let mut rows_output = 0usize;
    let full_start = Instant::now();
    for _ in 0..ROUNDS {
        let r = db.query(q).at(probe).run().expect("run");
        rows_output = r.len();
        std::hint::black_box(&r);
    }
    let full_us = full_start.elapsed().as_secs_f64() * 1e6;

    // LIMIT 1 streamed: the operator tree stops pulling the scan after
    // the first match — same first row, a fraction of the work.
    let first_full = db.query(q).at(probe).run().expect("run").rows.remove(0);
    let mut limit_rows_scanned = 0usize;
    let mut limit_recon = 0usize;
    let limit_start = Instant::now();
    for _ in 0..ROUNDS {
        let mut stream = db.query(q).at(probe).limit(1).stream().expect("stream");
        let row = stream.next().expect("one row").expect("ok");
        assert!(stream.next().is_none(), "limit 1 yields exactly one row");
        assert_eq!(row, first_full, "limit-1 stream diverges from full run");
        let s = stream.stats();
        limit_rows_scanned = s.rows_scanned;
        limit_recon = s.reconstructions;
    }
    let limit_us = limit_start.elapsed().as_secs_f64() * 1e6;

    // One streamed full drain, for the bounded-memory figure.
    let mut stream = db.query(q).at(probe).stream().expect("stream");
    let streamed: usize = (&mut stream).map(|r| r.map(|_| 1usize).expect("row")).sum();
    assert_eq!(streamed, rows_output, "stream and run disagree on row count");
    let peak = stream.peak_rows_buffered();
    drop(stream);
    let gauge = db
        .metrics()
        .snapshot()
        .gauge("exec.peak_rows_buffered")
        .expect("exec.peak_rows_buffered gauge");
    assert_eq!(gauge as usize, peak, "gauge must report the stream's peak");

    let speedup = full_us / limit_us.max(0.001);
    println!("  full:   {:.0} µs/run, {rows_output} rows", full_us / ROUNDS as f64);
    println!(
        "  limit1: {:.0} µs/run, {limit_rows_scanned} rows scanned, {limit_recon} reconstructions",
        limit_us / ROUNDS as f64
    );
    println!("  speedup: {speedup:.1}x; peak rows buffered: {peak} (result: {rows_output})");
    if !quick && speedup < 5.0 {
        println!("  WARNING: LIMIT 1 early exit below the 5x target");
    }

    let generated_at = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let engine = db.metrics().snapshot().to_json();
    let json = format!(
        "{{\n  \"generated_at\": {generated_at},\n  \"seed\": {SEED},\n  \"workload\": {{\n    \"generator\": \"tdocgen\",\n    \"docs\": {docs},\n    \"versions_per_doc\": {},\n    \"items\": 24,\n    \"rounds\": {ROUNDS},\n    \"query\": \"{}\"\n  }},\n  \"full\": {{\n    \"total_us\": {full_us:.1},\n    \"per_run_us\": {:.1},\n    \"rows\": {rows_output}\n  }},\n  \"limit1\": {{\n    \"total_us\": {limit_us:.1},\n    \"per_run_us\": {:.1},\n    \"rows_scanned\": {limit_rows_scanned},\n    \"reconstructions\": {limit_recon}\n  }},\n  \"speedup\": {speedup:.2},\n  \"peak_rows_buffered\": {peak},\n  \"engine_metrics\": {}\n}}\n",
        versions + 1,
        q.replace('"', "\\\""),
        full_us / ROUNDS as f64,
        limit_us / ROUNDS as f64,
        engine.trim_end(),
    );
    std::fs::write("BENCH_exec.json", &json).expect("write BENCH_exec.json");
    println!("  wrote BENCH_exec.json");
}
