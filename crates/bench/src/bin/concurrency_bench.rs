//! Concurrency benchmark: group-commit write throughput and snapshot
//! reader scaling versus thread count.
//!
//! Two sections, written to `BENCH_concurrency.json`:
//!
//! * **commit** — a fresh durable (`wal_sync`) store per thread count;
//!   a fixed total number of tiny `put`s is split across 1/2/4/8
//!   committer threads writing disjoint documents. One thread pays one
//!   fsync per commit; eight threads funnel into the WAL group commit
//!   and share fsync barriers, so throughput should rise ≥3x at 8
//!   threads. The `wal.group_commit.batch_size` histogram (durable
//!   watermark advance per fsync) is reported per run and must sum to
//!   the commit count — every commit crosses exactly one barrier.
//! * **readers** — one in-memory corpus, 1..16 reader threads each
//!   running snapshot-anchored queries (`doc("d")[t]`) at skewed
//!   historical timestamps. Readers share the store's read lock and
//!   immutable version data, so queries/sec should scale with cores.
//!
//! ```sh
//! cargo run --release -p txdb-bench --bin concurrency_bench
//! ```
//!
//! Set `CONCURRENCY_BENCH_QUICK=1` for a small run (CI smoke).

use std::time::Instant;

use txdb_bench::step_ts;
use txdb_core::{Database, DbOptions};
use txdb_query::QueryExt;

const COMMIT_THREADS: &[usize] = &[1, 2, 4, 8];
const READER_THREADS: &[usize] = &[1, 2, 4, 8, 16];

/// One commit-throughput run at a fixed thread count.
struct CommitRun {
    threads: usize,
    puts: u64,
    elapsed_us: f64,
    puts_per_sec: f64,
    fsyncs: u64,
    mean_batch: f64,
    p95_batch: u64,
    max_batch: u64,
}

fn bench_commits(threads: usize, total_puts: u64) -> CommitRun {
    let per_thread = total_puts / threads as u64;
    let puts = per_thread * threads as u64;
    let dir =
        std::env::temp_dir().join(format!("txdb-conc-bench-{}t-{}", threads, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = DbOptions::at(&dir).wal_sync(true).open().expect("open");
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let db = &db;
            s.spawn(move || {
                for i in 0..per_thread {
                    db.put(&format!("doc-{t}"), &format!("<a><v>{i}</v></a>"), step_ts(i + 1))
                        .expect("put");
                }
            });
        }
    });
    let elapsed_us = start.elapsed().as_secs_f64() * 1e6;
    let h = db
        .metrics()
        .snapshot()
        .histogram("wal.group_commit.batch_size")
        .expect("wal.group_commit.batch_size histogram");
    assert_eq!(h.sum, puts, "every commit crosses exactly one fsync barrier");
    assert!(h.count >= 1 && h.count <= puts);
    db.close().expect("close");
    let _ = std::fs::remove_dir_all(&dir);
    CommitRun {
        threads,
        puts,
        elapsed_us,
        puts_per_sec: puts as f64 / (elapsed_us / 1e6),
        fsyncs: h.count,
        mean_batch: h.sum as f64 / h.count.max(1) as f64,
        p95_batch: h.p95,
        max_batch: h.max,
    }
}

fn bench_readers(db: &Database, threads: usize, queries: usize, versions: u64) -> f64 {
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                // Skewed walk: at any instant the threads sit on
                // different snapshots, so the meta-cache shards and
                // version chains are all hot at once.
                for k in 0..queries {
                    let v = ((k * 7 + t * 13) % versions as usize) as u64;
                    let q = format!(
                        r#"SELECT R/n FROM doc("d")[{}]//log R"#,
                        step_ts(v * 10 + 5).micros()
                    );
                    let r = db.query(&q).run().expect("query");
                    assert_eq!(r.len(), 1, "snapshot query must hit exactly one version");
                    std::hint::black_box(&r);
                }
            });
        }
    });
    (threads * queries) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let quick = std::env::var("CONCURRENCY_BENCH_QUICK").is_ok_and(|v| v == "1");
    let total_puts: u64 = if quick { 64 } else { 640 };
    let rounds = if quick { 1 } else { 3 };
    let (versions, queries_per_thread) = if quick { (16u64, 20usize) } else { (48, 120) };
    println!("== concurrency_bench: group-commit writers, snapshot readers ==");
    println!("   commit: {total_puts} durable puts split over {COMMIT_THREADS:?} threads, best of {rounds}");
    println!(
        "   readers: {queries_per_thread} snapshot queries/thread over {READER_THREADS:?} threads"
    );

    // Warm-up (page cache, allocator, code paths), then `rounds`
    // interleaved passes per thread count keeping the best: fsync latency
    // on a shared box is spiky, and interleaving keeps a transient stall
    // from biasing one thread count.
    let _ = bench_commits(2, total_puts.min(64));
    let mut commit_runs: Vec<CommitRun> =
        COMMIT_THREADS.iter().map(|&t| bench_commits(t, total_puts)).collect();
    for _ in 1..rounds {
        for (i, &t) in COMMIT_THREADS.iter().enumerate() {
            let run = bench_commits(t, total_puts);
            if run.puts_per_sec > commit_runs[i].puts_per_sec {
                commit_runs[i] = run;
            }
        }
    }
    for r in &commit_runs {
        println!(
            "  commit {}t: {:.0} puts/s ({} puts, {:.0} µs, {} fsyncs, mean batch {:.1}, p95 {}, max {})",
            r.threads, r.puts_per_sec, r.puts, r.elapsed_us, r.fsyncs, r.mean_batch,
            r.p95_batch, r.max_batch
        );
    }
    let base = commit_runs.first().expect("1-thread run").puts_per_sec;
    let at8 = commit_runs.last().expect("8-thread run").puts_per_sec;
    let commit_speedup = at8 / base.max(0.001);
    println!("  commit speedup 8t vs 1t: {commit_speedup:.2}x");
    if !quick && commit_speedup < 3.0 {
        println!("  WARNING: group-commit speedup below the 3x target");
    }

    // Reader corpus: one hot document, periodic full snapshots so a
    // query's reconstruction cost is bounded and uniform.
    let db = DbOptions::new().snapshot_every(8).open().expect("open");
    for v in 0..versions {
        db.put("d", &format!("<log><n>{v}</n><w>alpha{v}</w></log>"), step_ts(v * 10))
            .expect("put");
    }
    let _ = bench_readers(&db, 2, queries_per_thread.min(20), versions); // warm-up
    let mut reader_runs: Vec<(usize, f64)> = READER_THREADS
        .iter()
        .map(|&t| (t, bench_readers(&db, t, queries_per_thread, versions)))
        .collect();
    for _ in 1..rounds {
        for (i, &t) in READER_THREADS.iter().enumerate() {
            let qps = bench_readers(&db, t, queries_per_thread, versions);
            if qps > reader_runs[i].1 {
                reader_runs[i].1 = qps;
            }
        }
    }
    for (t, qps) in &reader_runs {
        println!("  readers {t}t: {qps:.0} queries/s");
    }
    let reader_base = reader_runs.first().expect("1-thread run").1;
    let reader_best = reader_runs.iter().map(|&(_, q)| q).fold(0.0f64, f64::max);
    println!("  reader speedup best vs 1t: {:.2}x", reader_best / reader_base.max(0.001));
    assert_eq!(
        db.metrics().snapshot().gauge("db.active_snapshots"),
        Some(0),
        "all query pins released"
    );

    let generated_at = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let commit_json = commit_runs
        .iter()
        .map(|r| {
            format!(
                "      {{ \"threads\": {}, \"puts\": {}, \"elapsed_us\": {:.1}, \"puts_per_sec\": {:.1}, \"batch_histogram\": {{ \"fsyncs\": {}, \"sum\": {}, \"mean\": {:.2}, \"p95\": {}, \"max\": {} }} }}",
                r.threads, r.puts, r.elapsed_us, r.puts_per_sec, r.fsyncs, r.puts,
                r.mean_batch, r.p95_batch, r.max_batch
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let reader_json = reader_runs
        .iter()
        .map(|(t, qps)| format!("      {{ \"threads\": {t}, \"queries_per_sec\": {qps:.1} }}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let engine = db.metrics().snapshot().to_json();
    let json = format!(
        "{{\n  \"generated_at\": {generated_at},\n  \"quick\": {quick},\n  \"commit\": {{\n    \"wal_sync\": true,\n    \"total_puts\": {total_puts},\n    \"runs\": [\n{commit_json}\n    ],\n    \"speedup_8v1\": {commit_speedup:.2}\n  }},\n  \"readers\": {{\n    \"corpus_versions\": {versions},\n    \"queries_per_thread\": {queries_per_thread},\n    \"runs\": [\n{reader_json}\n    ],\n    \"speedup_best_v1\": {:.2}\n  }},\n  \"engine_metrics\": {}\n}}\n",
        reader_best / reader_base.max(0.001),
        engine.trim_end(),
    );
    std::fs::write("BENCH_concurrency.json", &json).expect("write BENCH_concurrency.json");
    println!("  wrote BENCH_concurrency.json");
}
