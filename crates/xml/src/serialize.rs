//! Serialization of [`Tree`]s back to XML text.
//!
//! Two modes: compact (no inter-element whitespace — the inverse of the
//! default parser configuration, so `parse ∘ serialize = id`) and pretty
//! (two-space indentation for human consumption in examples and the
//! experiment harness). An optional *annotated* mode emits the system
//! attributes `txdb:xid` and `txdb:ts`, which is how reconstructed versions
//! can be returned to clients without losing identity information.

use std::fmt::Write as _;

use crate::tree::{NodeId, NodeKind, Tree};

/// Serialization configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerializeOptions {
    /// Indent with two spaces per level and newlines between elements.
    pub pretty: bool,
    /// Emit `txdb:xid` / `txdb:ts` system attributes on every element.
    pub annotate: bool,
}

/// Serializes the whole forest compactly.
pub fn to_string(tree: &Tree) -> String {
    serialize_with(tree, SerializeOptions::default())
}

/// Serializes the whole forest with indentation.
pub fn to_string_pretty(tree: &Tree) -> String {
    serialize_with(tree, SerializeOptions { pretty: true, annotate: false })
}

/// Serializes the whole forest with explicit options.
pub fn serialize_with(tree: &Tree, opts: SerializeOptions) -> String {
    let mut out = String::with_capacity(tree.len() * 16);
    for &root in tree.roots() {
        write_node(tree, root, opts, 0, &mut out);
    }
    out
}

/// Serializes a single subtree compactly.
pub fn subtree_to_string(tree: &Tree, id: NodeId) -> String {
    let mut out = String::new();
    write_node(tree, id, SerializeOptions::default(), 0, &mut out);
    out
}

fn write_node(tree: &Tree, id: NodeId, opts: SerializeOptions, depth: usize, out: &mut String) {
    let node = tree.node(id);
    match &node.kind {
        NodeKind::Text { value } => {
            if opts.pretty {
                indent(out, depth);
            }
            escape_text(value, out);
            if opts.pretty {
                out.push('\n');
            }
        }
        NodeKind::Element { name, attrs } => {
            if opts.pretty {
                indent(out, depth);
            }
            out.push('<');
            out.push_str(name);
            for (k, v) in attrs {
                out.push(' ');
                out.push_str(k);
                out.push_str("=\"");
                escape_attr(v, out);
                out.push('"');
            }
            if opts.annotate {
                let _ = write!(out, " txdb:xid=\"{}\"", node.xid.0);
                let _ = write!(out, " txdb:ts=\"{}\"", node.ts.micros());
            }
            if node.children().is_empty() {
                out.push_str("/>");
                if opts.pretty {
                    out.push('\n');
                }
                return;
            }
            out.push('>');
            // A single text child is kept inline even in pretty mode.
            let inline_text = opts.pretty
                && node.children().len() == 1
                && tree.node(node.children()[0]).text().is_some();
            if opts.pretty && !inline_text {
                out.push('\n');
            }
            if inline_text {
                escape_text(tree.node(node.children()[0]).text().unwrap(), out);
            } else {
                for &c in node.children() {
                    write_node(tree, c, opts, depth + 1, out);
                }
                if opts.pretty {
                    indent(out, depth);
                }
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
            if opts.pretty {
                out.push('\n');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Escapes character data: `&`, `<`, `>` (the latter for `]]>` safety).
pub fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
}

/// Escapes an attribute value for a double-quoted attribute.
pub fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document;
    use crate::tree::TreeBuilder;

    #[test]
    fn roundtrip_compact() {
        let src = r#"<guide><restaurant category="italian"><name>Napoli</name><price>15</price></restaurant><restaurant><name>Akropolis</name></restaurant></guide>"#;
        let t = parse_document(src).unwrap();
        assert_eq!(to_string(&t), src);
    }

    #[test]
    fn escaping_roundtrip() {
        let mut out = String::new();
        escape_text("a<b&c>d", &mut out);
        assert_eq!(out, "a&lt;b&amp;c&gt;d");
        let t =
            TreeBuilder::new().open("a").attr("k", "x\"y<z&\n").text("1<2 & 3>4").close().build();
        let s = to_string(&t);
        let back = parse_document(&s).unwrap();
        assert_eq!(back.node(back.root().unwrap()).attr("k"), Some("x\"y<z&\n"));
        assert_eq!(back.text_content(back.root().unwrap()), "1<2 & 3>4");
    }

    #[test]
    fn empty_elements_selfclose() {
        let t = parse_document("<a><b/></a>").unwrap();
        assert_eq!(to_string(&t), "<a><b/></a>");
    }

    #[test]
    fn pretty_printing_shape() {
        let t = parse_document("<a><b>x</b><c><d/></c></a>").unwrap();
        let p = to_string_pretty(&t);
        assert_eq!(p, "<a>\n  <b>x</b>\n  <c>\n    <d/>\n  </c>\n</a>\n");
        // Pretty output reparses to the same structure.
        let back = parse_document(&p).unwrap();
        assert_eq!(to_string(&back), to_string(&t));
    }

    #[test]
    fn annotated_output_carries_ids() {
        use txdb_base::{Timestamp, Xid};
        let mut t = parse_document("<a><b/></a>").unwrap();
        let ids: Vec<_> = t.iter().collect();
        for (i, id) in ids.iter().enumerate() {
            t.node_mut(*id).xid = Xid(i as u64 + 1);
            t.node_mut(*id).ts = Timestamp::from_micros(42);
        }
        let s = serialize_with(&t, SerializeOptions { pretty: false, annotate: true });
        assert!(s.contains("txdb:xid=\"1\""));
        assert!(s.contains("txdb:ts=\"42\""));
    }

    #[test]
    fn forest_serialization() {
        let t = parse_document("<a/><b>x</b>").unwrap();
        assert_eq!(to_string(&t), "<a/><b>x</b>");
    }

    #[test]
    fn subtree_serialization() {
        let t = parse_document("<a><b><c>x</c></b></a>").unwrap();
        let root = t.root().unwrap();
        let b = t.node(root).children()[0];
        assert_eq!(subtree_to_string(&t, b), "<b><c>x</c></b>");
    }
}
