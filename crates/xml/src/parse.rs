//! A non-validating XML parser producing [`Tree`]s.
//!
//! Supports the XML subset a document warehouse actually sees: elements,
//! attributes (single- or double-quoted), character data, the five
//! predefined entities plus decimal/hex character references, CDATA
//! sections, comments, processing instructions and an optional XML
//! declaration and DOCTYPE (both skipped). Namespace prefixes are kept as
//! part of the name.
//!
//! Whitespace-only text between elements is dropped by default (the data
//! model of the paper has no use for indentation text nodes); use
//! [`ParseOptions::keep_whitespace`] to retain it.

use txdb_base::{Error, Result};

use crate::tree::{NodeId, Tree};

/// Parser configuration.
#[derive(Clone, Copy, Debug)]
pub struct ParseOptions {
    /// Keep whitespace-only text nodes (default: false).
    pub keep_whitespace: bool,
    /// Allow multiple root elements, i.e. parse a forest (default: true —
    /// the paper's data model is a forest of trees, and delta documents use
    /// multiple roots).
    pub allow_forest: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions { keep_whitespace: false, allow_forest: true }
    }
}

/// Parses an XML document (or forest) with default options.
pub fn parse_document(input: &str) -> Result<Tree> {
    Parser::new(input, ParseOptions::default()).parse()
}

/// Parses with explicit options.
pub fn parse_with(input: &str, opts: ParseOptions) -> Result<Tree> {
    Parser::new(input, opts).parse()
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    opts: ParseOptions,
    tree: Tree,
    stack: Vec<NodeId>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, opts: ParseOptions) -> Self {
        Parser { input: input.as_bytes(), pos: 0, opts, tree: Tree::new(), stack: Vec::new() }
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::XmlParse { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn expect(&mut self, s: &str) -> Result<()> {
        if self.starts_with(s) {
            self.pos += s.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips until (and including) the terminator `end`.
    fn skip_until(&mut self, end: &str) -> Result<()> {
        match find_sub(&self.input[self.pos..], end.as_bytes()) {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => Err(self.err(format!("unterminated construct, expected `{end}`"))),
        }
    }

    fn parse(mut self) -> Result<Tree> {
        loop {
            self.parse_misc()?;
            if self.peek().is_none() {
                break;
            }
            if !self.starts_with("<") {
                return Err(self.err("text content outside of any element"));
            }
            if !self.tree.roots().is_empty() && !self.opts.allow_forest {
                return Err(self.err("multiple root elements"));
            }
            self.parse_element()?;
        }
        if self.tree.roots().is_empty() {
            return Err(self.err("no root element"));
        }
        debug_assert!(self.tree.check_consistency().is_ok());
        Ok(self.tree)
    }

    /// Skips whitespace, comments, PIs, the XML declaration and DOCTYPE.
    fn parse_misc(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.pos += 4;
                self.skip_until("-->")?;
            } else if self.starts_with("<?") {
                self.pos += 2;
                self.skip_until("?>")?;
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_doctype(&mut self) -> Result<()> {
        // <!DOCTYPE ... possibly with an [internal subset] ... >
        let start = self.pos;
        self.pos += "<!DOCTYPE".len();
        let mut depth = 0i32;
        while let Some(b) = self.bump() {
            match b {
                b'[' => depth += 1,
                b']' => depth -= 1,
                b'>' if depth <= 0 => return Ok(()),
                _ => {}
            }
        }
        self.pos = start;
        Err(self.err("unterminated DOCTYPE"))
    }

    fn parse_element(&mut self) -> Result<()> {
        self.expect("<")?;
        let name = self.parse_name()?;
        let elem = self.tree.new_element(name);
        match self.stack.last() {
            Some(&p) => self.tree.append_child(p, elem),
            None => self.tree.push_root(elem),
        }
        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.expect("/>").map_err(|_| self.err("expected `/>`"))?;
                    return Ok(()); // empty element
                }
                Some(_) => {
                    let (k, v) = self.parse_attribute()?;
                    if self.tree.node(elem).attr(&k).is_some() {
                        return Err(self.err(format!("duplicate attribute `{k}`")));
                    }
                    self.tree.set_attr(elem, k, v);
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }
        // Content.
        self.stack.push(elem);
        self.parse_content()?;
        self.stack.pop();
        // End tag.
        self.expect("</")?;
        let end_name = self.parse_name()?;
        if Some(end_name.as_str()) != self.tree.node(elem).name() {
            return Err(self.err(format!(
                "mismatched end tag `</{end_name}>` for `<{}>`",
                self.tree.node(elem).name().unwrap_or("?")
            )));
        }
        self.skip_ws();
        self.expect(">")?;
        Ok(())
    }

    fn parse_content(&mut self) -> Result<()> {
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unexpected end of input in element content")),
                Some(b'<') => {
                    if self.starts_with("</") {
                        self.flush_text(&mut text);
                        return Ok(());
                    } else if self.starts_with("<!--") {
                        self.pos += 4;
                        self.skip_until("-->")?;
                    } else if self.starts_with("<![CDATA[") {
                        self.pos += 9;
                        let rest = &self.input[self.pos..];
                        let end =
                            find_sub(rest, b"]]>").ok_or_else(|| self.err("unterminated CDATA"))?;
                        text.push_str(
                            std::str::from_utf8(&rest[..end])
                                .map_err(|_| self.err("invalid UTF-8 in CDATA"))?,
                        );
                        self.pos += end + 3;
                    } else if self.starts_with("<?") {
                        self.pos += 2;
                        self.skip_until("?>")?;
                    } else {
                        self.flush_text(&mut text);
                        self.parse_element()?;
                    }
                }
                Some(b'&') => {
                    self.parse_entity(&mut text)?;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'<' || b == b'&' {
                            break;
                        }
                        self.pos += 1;
                    }
                    text.push_str(
                        std::str::from_utf8(&self.input[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in text"))?,
                    );
                }
            }
        }
    }

    fn flush_text(&mut self, text: &mut String) {
        if text.is_empty() {
            return;
        }
        let keep = self.opts.keep_whitespace || !text.chars().all(char::is_whitespace);
        if keep {
            let id = self.tree.new_text(std::mem::take(text));
            let p = *self.stack.last().expect("text inside element");
            self.tree.append_child(p, id);
        } else {
            text.clear();
        }
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok =
                b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80;
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        let first = self.input[start];
        if first.is_ascii_digit() || first == b'-' || first == b'.' {
            return Err(self.err("name cannot start with a digit, `-` or `.`"));
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in name"))?
            .to_string())
    }

    fn parse_attribute(&mut self) -> Result<(String, String)> {
        let key = self.parse_name()?;
        self.skip_ws();
        self.expect("=")?;
        self.skip_ws();
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("attribute value must be quoted")),
        };
        let mut value = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(b) if b == quote => {
                    self.pos += 1;
                    break;
                }
                Some(b'&') => self.parse_entity(&mut value)?,
                Some(b'<') => return Err(self.err("`<` in attribute value")),
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote || b == b'&' || b == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    value.push_str(
                        std::str::from_utf8(&self.input[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in attribute"))?,
                    );
                }
            }
        }
        Ok((key, value))
    }

    fn parse_entity(&mut self, out: &mut String) -> Result<()> {
        debug_assert_eq!(self.peek(), Some(b'&'));
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b';' {
                break;
            }
            if self.pos - start > 10 {
                break;
            }
            self.pos += 1;
        }
        if self.peek() != Some(b';') {
            return Err(self.err("unterminated entity reference"));
        }
        let name = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in entity"))?;
        self.pos += 1; // consume ';'
        match name {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let cp = u32::from_str_radix(&name[2..], 16)
                    .map_err(|_| self.err(format!("bad character reference &{name};")))?;
                out.push(
                    char::from_u32(cp)
                        .ok_or_else(|| self.err(format!("invalid code point &{name};")))?,
                );
            }
            _ if name.starts_with('#') => {
                let cp: u32 = name[1..]
                    .parse()
                    .map_err(|_| self.err(format!("bad character reference &{name};")))?;
                out.push(
                    char::from_u32(cp)
                        .ok_or_else(|| self.err(format!("invalid code point &{name};")))?,
                );
            }
            _ => return Err(self.err(format!("unknown entity &{name};"))),
        }
        Ok(())
    }
}

/// Finds `needle` in `haystack`, returning the byte offset.
fn find_sub(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let t = parse_document(
            r#"<guide><restaurant category="italian"><name>Napoli</name><price>15</price></restaurant></guide>"#,
        )
        .unwrap();
        let root = t.root().unwrap();
        assert_eq!(t.node(root).name(), Some("guide"));
        let rest = t.node(root).children()[0];
        assert_eq!(t.node(rest).attr("category"), Some("italian"));
        assert_eq!(t.text_content(root), "Napoli15");
    }

    #[test]
    fn drops_indentation_whitespace_by_default() {
        let t = parse_document("<a>\n  <b>x</b>\n  <c>y</c>\n</a>").unwrap();
        let root = t.root().unwrap();
        assert_eq!(t.node(root).children().len(), 2);
    }

    #[test]
    fn keeps_whitespace_on_request() {
        let t = parse_with(
            "<a> <b>x</b> </a>",
            ParseOptions { keep_whitespace: true, allow_forest: true },
        )
        .unwrap();
        let root = t.root().unwrap();
        assert_eq!(t.node(root).children().len(), 3);
    }

    #[test]
    fn mixed_content_preserved() {
        let t = parse_document("<p>hello <b>world</b>!</p>").unwrap();
        let root = t.root().unwrap();
        let kids = t.node(root).children();
        assert_eq!(kids.len(), 3);
        assert_eq!(t.node(kids[0]).text(), Some("hello "));
        assert_eq!(t.node(kids[1]).name(), Some("b"));
        assert_eq!(t.node(kids[2]).text(), Some("!"));
    }

    #[test]
    fn empty_element_syntax() {
        let t = parse_document(r#"<a><b x="1"/><c/></a>"#).unwrap();
        let root = t.root().unwrap();
        assert_eq!(t.node(root).children().len(), 2);
        let b = t.node(root).children()[0];
        assert_eq!(t.node(b).attr("x"), Some("1"));
    }

    #[test]
    fn entities_decoded_in_text_and_attrs() {
        let t =
            parse_document(r#"<a t="&lt;&amp;&quot;&apos;&gt;">&#65;&#x42;c &amp; d</a>"#).unwrap();
        let root = t.root().unwrap();
        assert_eq!(t.node(root).attr("t"), Some(r#"<&"'>"#));
        assert_eq!(t.text_content(root), "ABc & d");
    }

    #[test]
    fn cdata_is_literal() {
        let t = parse_document("<a><![CDATA[<not> &parsed;]]></a>").unwrap();
        assert_eq!(t.text_content(t.root().unwrap()), "<not> &parsed;");
    }

    #[test]
    fn comments_pis_doctype_skipped() {
        let t = parse_document(
            "<?xml version=\"1.0\"?>\n<!DOCTYPE guide [ <!ELEMENT a ANY> ]>\n<!-- c -->\n<a><!-- inner --><?pi data?>x</a>",
        )
        .unwrap();
        assert_eq!(t.text_content(t.root().unwrap()), "x");
    }

    #[test]
    fn forest_parsing() {
        let t = parse_document("<a/><b/>").unwrap();
        assert_eq!(t.roots().len(), 2);
        let err =
            parse_with("<a/><b/>", ParseOptions { keep_whitespace: false, allow_forest: false });
        assert!(err.is_err());
    }

    #[test]
    fn single_quoted_attributes() {
        let t = parse_document(r#"<a x='y "z"'/>"#).unwrap();
        assert_eq!(t.node(t.root().unwrap()).attr("x"), Some(r#"y "z""#));
    }

    #[test]
    fn namespace_prefix_kept_verbatim() {
        let t = parse_document(r#"<ns:a xmlns:ns="http://x">v</ns:a>"#).unwrap();
        assert_eq!(t.node(t.root().unwrap()).name(), Some("ns:a"));
    }

    #[test]
    fn error_mismatched_tags() {
        let e = parse_document("<a><b></a></b>").unwrap_err();
        assert!(e.to_string().contains("mismatched end tag"), "{e}");
    }

    #[test]
    fn error_cases() {
        for bad in [
            "",
            "   ",
            "<a>",
            "<a><b></b>",
            "<a x=1></a>",
            "<a x=\"1></a>",
            "text<a/>",
            "<a>&bogus;</a>",
            "<a>&#xZZ;</a>",
            "<1a></1a>",
            "<a x=\"1\" x=\"2\"/>",
            "<!-- unterminated",
            "<a><![CDATA[x</a>",
        ] {
            assert!(parse_document(bad).is_err(), "should fail: {bad:?}");
        }
    }

    #[test]
    fn offsets_reported() {
        match parse_document("<a><b></c></a>") {
            Err(Error::XmlParse { offset, .. }) => assert!(offset > 0),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn deeply_nested_ok() {
        let mut s = String::new();
        for _ in 0..200 {
            s.push_str("<d>");
        }
        s.push('x');
        for _ in 0..200 {
            s.push_str("</d>");
        }
        let t = parse_document(&s).unwrap();
        assert_eq!(t.len(), 201);
    }
}
