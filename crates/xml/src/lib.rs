//! # txdb-xml — XML substrate for the temporal XML database
//!
//! The paper assumes an XML store in the style of Xyleme: documents are
//! forests of element trees (§4), every element carries a persistent XID and
//! a timestamp, and queries are expressed over *pattern trees* matched
//! against the forest. This crate provides that substrate, implemented from
//! scratch:
//!
//! * [`tree`] — an arena-based mutable tree/forest with per-node XIDs and
//!   timestamps, the in-memory representation of one document version;
//! * [`parse`] — a non-validating XML parser producing [`tree::Tree`]s;
//! * [`serialize`] — serialization back to XML text (compact and pretty);
//! * [`path`] — a small XPath-like path language (`/a/b`, `//c`, `text()`)
//!   used for value extraction in queries and by the stratum baseline;
//! * [`pattern`] — pattern trees (the input of `PatternScan`) plus a direct
//!   tree matcher used by the stratum baseline and as a testing oracle for
//!   the index-based matcher;
//! * [`hash`] — stable 64-bit subtree hashing used by the diff;
//! * [`codec`] — a compact binary codec used to store complete versions;
//! * [`equality`] — the paper's `=` value equality (shallow and deep, §7.4);
//! * [`similarity`] — the paper's `~` similarity operator (§7.4, in the
//!   style of Theobald & Weikum).
//!
//! Namespaces are not interpreted: a qualified name like `ns:price` is
//! treated as an opaque tag name, which matches the paper's data model
//! (names are just words that also appear in the full-text index).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod equality;
pub mod hash;
pub mod parse;
pub mod path;
pub mod pattern;
pub mod serialize;
pub mod similarity;
pub mod tree;

pub use parse::parse_document;
pub use path::Path;
pub use pattern::PatternTree;
pub use serialize::{to_string, to_string_pretty};
pub use tree::{Node, NodeId, NodeKind, Tree};
