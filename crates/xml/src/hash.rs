//! Stable 64-bit hashing of nodes and subtrees.
//!
//! The XyDiff-style diff (txdb-delta) matches identical subtrees between two
//! versions by hash before doing any structural work, so the hash must be
//!
//! * **stable** across processes and builds (it may be persisted), and
//! * **structural**: it covers the node kind, name/text, attributes and the
//!   ordered sequence of child hashes — but *not* XIDs or timestamps, which
//!   differ between versions by construction.
//!
//! We use FNV-1a as the byte mixer with small domain-separation tags between
//! fields; it is fast for the short strings that dominate XML and has no
//! dependency on `std`'s randomized hashers.

use crate::tree::{NodeId, NodeKind, Tree};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over bytes.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mixes a byte slice.
    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Mixes a u64 (little-endian bytes).
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Mixes a single tag byte (domain separation).
    #[inline]
    pub fn write_tag(&mut self, t: u8) {
        self.write(&[t]);
    }

    /// Finalizes.
    #[inline]
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Hashes a string.
pub fn hash_str(s: &str) -> u64 {
    let mut h = Fnv64::new();
    h.write(s.as_bytes());
    h.finish()
}

/// Hashes the *label* of a node: kind, name/text and attributes — not its
/// children, XID or timestamp. Two nodes with equal label hash are
/// shallow-equal with overwhelming probability.
pub fn label_hash(kind: &NodeKind) -> u64 {
    let mut h = Fnv64::new();
    match kind {
        NodeKind::Element { name, attrs } => {
            h.write_tag(1);
            h.write(name.as_bytes());
            for (k, v) in attrs {
                h.write_tag(2);
                h.write(k.as_bytes());
                h.write_tag(3);
                h.write(v.as_bytes());
            }
        }
        NodeKind::Text { value } => {
            h.write_tag(4);
            h.write(value.as_bytes());
        }
    }
    h.finish()
}

/// Per-node subtree hashes (and subtree sizes in nodes) for a whole forest.
///
/// `hash[n]` covers node `n`'s label and the ordered hashes of its children;
/// equal subtree hashes mean structurally identical subtrees (modulo hash
/// collisions, which the diff verifies against).
#[derive(Debug, Default)]
pub struct SubtreeHashes {
    hashes: std::collections::HashMap<NodeId, u64>,
    sizes: std::collections::HashMap<NodeId, u32>,
}

impl SubtreeHashes {
    /// Computes hashes for every node of the forest.
    pub fn compute(tree: &Tree) -> Self {
        let mut out = SubtreeHashes::default();
        for &root in tree.roots() {
            out.compute_node(tree, root);
        }
        out
    }

    fn compute_node(&mut self, tree: &Tree, id: NodeId) -> (u64, u32) {
        let mut h = Fnv64::new();
        h.write_u64(label_hash(&tree.node(id).kind));
        let mut size = 1u32;
        for &c in tree.node(id).children() {
            let (ch, cs) = self.compute_node(tree, c);
            h.write_tag(5);
            h.write_u64(ch);
            size += cs;
        }
        let hash = h.finish();
        self.hashes.insert(id, hash);
        self.sizes.insert(id, size);
        (hash, size)
    }

    /// The subtree hash of `id`.
    pub fn hash(&self, id: NodeId) -> u64 {
        self.hashes[&id]
    }

    /// The subtree size (node count) of `id`.
    pub fn size(&self, id: NodeId) -> u32 {
        self.sizes[&id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document;

    #[test]
    fn identical_trees_same_hash() {
        let a = parse_document("<a><b>x</b><c/></a>").unwrap();
        let b = parse_document("<a><b>x</b><c/></a>").unwrap();
        let ha = SubtreeHashes::compute(&a);
        let hb = SubtreeHashes::compute(&b);
        assert_eq!(ha.hash(a.root().unwrap()), hb.hash(b.root().unwrap()));
    }

    #[test]
    fn text_change_changes_root_hash() {
        let a = parse_document("<a><b>x</b></a>").unwrap();
        let b = parse_document("<a><b>y</b></a>").unwrap();
        assert_ne!(
            SubtreeHashes::compute(&a).hash(a.root().unwrap()),
            SubtreeHashes::compute(&b).hash(b.root().unwrap())
        );
    }

    #[test]
    fn attr_change_changes_hash() {
        let a = parse_document(r#"<a k="1"/>"#).unwrap();
        let b = parse_document(r#"<a k="2"/>"#).unwrap();
        assert_ne!(
            SubtreeHashes::compute(&a).hash(a.root().unwrap()),
            SubtreeHashes::compute(&b).hash(b.root().unwrap())
        );
    }

    #[test]
    fn child_order_matters() {
        let a = parse_document("<a><b/><c/></a>").unwrap();
        let b = parse_document("<a><c/><b/></a>").unwrap();
        assert_ne!(
            SubtreeHashes::compute(&a).hash(a.root().unwrap()),
            SubtreeHashes::compute(&b).hash(b.root().unwrap())
        );
    }

    #[test]
    fn hash_ignores_xid_and_ts() {
        use txdb_base::{Timestamp, Xid};
        let a = parse_document("<a><b>x</b></a>").unwrap();
        let mut b = parse_document("<a><b>x</b></a>").unwrap();
        let ids: Vec<_> = b.iter().collect();
        for id in ids {
            b.node_mut(id).xid = Xid(99);
            b.node_mut(id).ts = Timestamp::from_secs(1);
        }
        assert_eq!(
            SubtreeHashes::compute(&a).hash(a.root().unwrap()),
            SubtreeHashes::compute(&b).hash(b.root().unwrap())
        );
    }

    #[test]
    fn sizes_counted() {
        let a = parse_document("<a><b>x</b><c/></a>").unwrap();
        let h = SubtreeHashes::compute(&a);
        assert_eq!(h.size(a.root().unwrap()), 4);
    }

    #[test]
    fn label_vs_subtree() {
        // Same label, different subtrees.
        let a = parse_document("<a><b/></a>").unwrap();
        let b = parse_document("<a><c/></a>").unwrap();
        assert_eq!(
            label_hash(&a.node(a.root().unwrap()).kind),
            label_hash(&b.node(b.root().unwrap()).kind)
        );
        assert_ne!(
            SubtreeHashes::compute(&a).hash(a.root().unwrap()),
            SubtreeHashes::compute(&b).hash(b.root().unwrap())
        );
    }

    #[test]
    fn tag_text_confusion_avoided() {
        // <x/> element vs text "x": domain separation must distinguish.
        let a = parse_document("<a><x/></a>").unwrap();
        let b = parse_document("<a>x</a>").unwrap();
        assert_ne!(
            SubtreeHashes::compute(&a).hash(a.root().unwrap()),
            SubtreeHashes::compute(&b).hash(b.root().unwrap())
        );
    }
}
