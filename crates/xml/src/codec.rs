//! Compact binary codec for trees.
//!
//! Complete document versions and snapshots are stored in this format (the
//! paper fixes the storage model, not the byte format of complete versions;
//! deltas, by contrast, are stored as XML text per §7.1 — see
//! `txdb-delta::xmlenc`). The codec is lossless for everything a version
//! carries: structure, names, attributes, text, XIDs and direct timestamps
//! — including text-node identity, which annotated XML text cannot express
//! directly.
//!
//! Layout (all integers varint-encoded except the magic):
//!
//! ```text
//! magic "TXT1"  | root_count | node*
//! node := 0x01 xid ts name_len name attr_count (klen k vlen v)* child_count node*
//!       | 0x02 xid ts text_len text
//! ```

use txdb_base::{Error, Result, Timestamp, Xid};

use crate::tree::{NodeId, NodeKind, Tree};

const MAGIC: &[u8; 4] = b"TXT1";
const TAG_ELEMENT: u8 = 0x01;
const TAG_TEXT: u8 = 0x02;

/// Encodes a whole forest to bytes.
pub fn encode_tree(tree: &Tree) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + tree.len() * 24);
    out.extend_from_slice(MAGIC);
    write_varint(&mut out, tree.roots().len() as u64);
    for &r in tree.roots() {
        encode_node(tree, r, &mut out);
    }
    out
}

fn encode_node(tree: &Tree, id: NodeId, out: &mut Vec<u8>) {
    let node = tree.node(id);
    match &node.kind {
        NodeKind::Element { name, attrs } => {
            out.push(TAG_ELEMENT);
            write_varint(out, node.xid.0);
            write_varint(out, node.ts.micros());
            write_bytes(out, name.as_bytes());
            write_varint(out, attrs.len() as u64);
            for (k, v) in attrs {
                write_bytes(out, k.as_bytes());
                write_bytes(out, v.as_bytes());
            }
            write_varint(out, node.children().len() as u64);
            for &c in node.children() {
                encode_node(tree, c, out);
            }
        }
        NodeKind::Text { value } => {
            out.push(TAG_TEXT);
            write_varint(out, node.xid.0);
            write_varint(out, node.ts.micros());
            write_bytes(out, value.as_bytes());
        }
    }
}

/// Decodes a forest from bytes produced by [`encode_tree`].
pub fn decode_tree(bytes: &[u8]) -> Result<Tree> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(Error::Corrupt("bad tree magic".into()));
    }
    let roots = r.varint()? as usize;
    if roots > bytes.len() {
        return Err(Error::Corrupt("root count exceeds input".into()));
    }
    let mut tree = Tree::new();
    for _ in 0..roots {
        let id = decode_node(&mut r, &mut tree, 0)?;
        tree.push_root(id);
    }
    if r.pos != bytes.len() {
        return Err(Error::Corrupt("trailing bytes after tree".into()));
    }
    Ok(tree)
}

const MAX_DEPTH: usize = 4096;

fn decode_node(r: &mut Reader<'_>, tree: &mut Tree, depth: usize) -> Result<NodeId> {
    if depth > MAX_DEPTH {
        return Err(Error::Corrupt("tree nesting too deep".into()));
    }
    let tag = r.byte()?;
    let xid = Xid(r.varint()?);
    let ts = Timestamp::from_micros(r.varint()?);
    match tag {
        TAG_ELEMENT => {
            let name = r.string()?;
            let id = tree.new_element(name);
            let nattrs = r.varint()? as usize;
            if nattrs > r.remaining() {
                return Err(Error::Corrupt("attr count exceeds input".into()));
            }
            for _ in 0..nattrs {
                let k = r.string()?;
                let v = r.string()?;
                tree.set_attr(id, k, v);
            }
            let nchildren = r.varint()? as usize;
            if nchildren > r.remaining() {
                return Err(Error::Corrupt("child count exceeds input".into()));
            }
            for _ in 0..nchildren {
                let c = decode_node(r, tree, depth + 1)?;
                tree.append_child(id, c);
            }
            tree.node_mut(id).xid = xid;
            tree.node_mut(id).ts = ts;
            Ok(id)
        }
        TAG_TEXT => {
            let value = r.string()?;
            let id = tree.new_text(value);
            tree.node_mut(id).xid = xid;
            tree.node_mut(id).ts = ts;
            Ok(id)
        }
        other => Err(Error::Corrupt(format!("bad node tag {other:#x}"))),
    }
}

/// LEB128 unsigned varint.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn write_bytes(out: &mut Vec<u8>, b: &[u8]) {
    write_varint(out, b.len() as u64);
    out.extend_from_slice(b);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn byte(&mut self) -> Result<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| Error::Corrupt("unexpected end of tree bytes".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Corrupt("unexpected end of tree bytes".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 {
                return Err(Error::Corrupt("varint overflow".into()));
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn string(&mut self) -> Result<String> {
        let len = self.varint()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::Corrupt("invalid UTF-8 in tree bytes".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document;

    fn with_ids(src: &str) -> Tree {
        let mut t = parse_document(src).unwrap();
        let ids: Vec<NodeId> = t.iter().collect();
        for (i, id) in ids.iter().enumerate() {
            t.node_mut(*id).xid = Xid(i as u64 + 1);
            t.node_mut(*id).ts = Timestamp::from_micros(1000 + i as u64);
        }
        t
    }

    fn identical(a: &Tree, b: &Tree) -> bool {
        fn nid(ta: &Tree, na: NodeId, tb: &Tree, nb: NodeId) -> bool {
            let (x, y) = (ta.node(na), tb.node(nb));
            x.xid == y.xid
                && x.ts == y.ts
                && x.kind == y.kind
                && x.children().len() == y.children().len()
                && x.children().iter().zip(y.children()).all(|(&p, &q)| nid(ta, p, tb, q))
        }
        a.roots().len() == b.roots().len()
            && a.roots().iter().zip(b.roots()).all(|(&p, &q)| nid(a, p, b, q))
    }

    #[test]
    fn roundtrip_simple() {
        let t = with_ids(r#"<g><r c="i"><n>Napoli</n><p>15</p></r></g>"#);
        let bytes = encode_tree(&t);
        let back = decode_tree(&bytes).unwrap();
        assert!(identical(&t, &back));
    }

    #[test]
    fn roundtrip_forest_and_unicode() {
        let t = with_ids("<a>æøå ❤</a><b x=\"ü\"/>");
        let back = decode_tree(&encode_tree(&t)).unwrap();
        assert!(identical(&t, &back));
    }

    #[test]
    fn roundtrip_whitespace_text() {
        // Whitespace-only text survives (unlike XML text roundtrip).
        let mut t = Tree::new();
        let e = t.new_element("a");
        let txt = t.new_text("   ");
        t.append_child(e, txt);
        t.push_root(e);
        let back = decode_tree(&encode_tree(&t)).unwrap();
        assert!(identical(&t, &back));
    }

    #[test]
    fn empty_forest() {
        let t = Tree::new();
        let back = decode_tree(&encode_tree(&t)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn rejects_corruption() {
        let t = with_ids("<a><b>x</b></a>");
        let bytes = encode_tree(&t);
        assert!(decode_tree(&[]).is_err());
        assert!(decode_tree(b"XXXX").is_err());
        assert!(decode_tree(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_tree(&extra).is_err());
        let mut bad_tag = bytes.clone();
        *bad_tag.last_mut().unwrap() = 0xff;
        assert!(decode_tree(&bad_tag).is_err());
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut r = Reader { buf: &buf, pos: 0 };
            assert_eq!(r.varint().unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn large_tree_roundtrip() {
        let mut src = String::from("<root>");
        for i in 0..500 {
            src.push_str(&format!("<item id=\"{i}\"><v>value {i}</v></item>"));
        }
        src.push_str("</root>");
        let t = with_ids(&src);
        let back = decode_tree(&encode_tree(&t)).unwrap();
        assert!(identical(&t, &back));
        assert_eq!(back.len(), t.len());
    }
}
