//! Pattern trees — the input of `PatternScan` and its temporal variants.
//!
//! Following Aguilera et al. (the paper's [1, 2]), a *pattern tree* is a
//! tree whose nodes carry predicates on elements and whose edges carry
//! structural relationships — `isParentOf` or `isAscendantOf` — plus
//! projection information. A pattern node matches an *element*; its
//! predicates are
//!
//! * an optional tag name (element names are words in the full-text index
//!   too, §7.2: "this index indexes all words in the documents, including
//!   element names"), and
//! * a set of *content words* that must occur in the element's own text or
//!   attribute values.
//!
//! A match of the whole pattern binds every pattern node to an element such
//! that all predicates hold and every edge's relationship holds.
//!
//! This module defines the pattern type plus [`match_tree`], a direct
//! in-memory matcher. The index-based matcher (the paper's §7.3.1
//! algorithm: per-word FTI lookups joined on document/relationship) lives in
//! `txdb-core::ops::pattern`; `match_tree` is its testing oracle and the
//! engine of the stratum baseline.

use crate::similarity::tokenize;
use crate::tree::{NodeId, Tree};

/// Relationship between a pattern node and its parent pattern node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PatternEdge {
    /// `isParentOf` — the parent binding is the element's parent.
    Child,
    /// `isAscendantOf` — the parent binding is a proper ancestor.
    Descendant,
}

/// One node of a pattern tree.
#[derive(Clone, Debug)]
pub struct PatternNode {
    /// Required tag name; `None` matches any element.
    pub tag: Option<String>,
    /// Words that must occur in the element's own text/attribute content.
    pub words: Vec<String>,
    /// Relationship to the parent pattern node (ignored on the root).
    pub edge: PatternEdge,
    /// Child pattern nodes.
    pub children: Vec<PatternNode>,
    /// Whether this node's binding is part of the scan output.
    pub project: bool,
    /// Optional variable name, used by the query layer.
    pub var: Option<String>,
    /// Require the bound element to be a document root (used when an
    /// absolute path like `/guide/...` anchors the pattern).
    pub at_root: bool,
}

impl PatternNode {
    /// A pattern node matching elements with the given tag.
    pub fn tag(name: impl Into<String>) -> Self {
        PatternNode {
            tag: Some(name.into()),
            words: Vec::new(),
            edge: PatternEdge::Child,
            children: Vec::new(),
            project: false,
            var: None,
            at_root: false,
        }
    }

    /// A pattern node matching any element.
    pub fn any() -> Self {
        PatternNode {
            tag: None,
            words: Vec::new(),
            edge: PatternEdge::Child,
            children: Vec::new(),
            project: false,
            var: None,
            at_root: false,
        }
    }

    /// Requires the bound element to be a document root.
    pub fn root_only(mut self) -> Self {
        self.at_root = true;
        self
    }

    /// Adds a required content word.
    pub fn word(mut self, w: impl AsRef<str>) -> Self {
        self.words.push(w.as_ref().to_lowercase());
        self
    }

    /// Marks the node as projected.
    pub fn project(mut self) -> Self {
        self.project = true;
        self
    }

    /// Names the binding.
    pub fn var(mut self, name: impl Into<String>) -> Self {
        self.var = Some(name.into());
        self
    }

    /// Appends a child related by `isParentOf`.
    pub fn child(mut self, mut c: PatternNode) -> Self {
        c.edge = PatternEdge::Child;
        self.children.push(c);
        self
    }

    /// Appends a child related by `isAscendantOf`.
    pub fn descendant(mut self, mut c: PatternNode) -> Self {
        c.edge = PatternEdge::Descendant;
        self.children.push(c);
        self
    }

    /// True when the element `n` of `tree` satisfies this node's local
    /// predicates (tag and words), ignoring edges.
    pub fn matches_node(&self, tree: &Tree, n: NodeId) -> bool {
        let node = tree.node(n);
        let Some(name) = node.name() else { return false };
        if let Some(tag) = &self.tag {
            if tag != name {
                return false;
            }
        }
        if self.words.is_empty() {
            return true;
        }
        // Collect the element's own words: immediate text + attributes.
        let mut own: Vec<String> = Vec::new();
        if let crate::tree::NodeKind::Element { attrs, .. } = &node.kind {
            for (k, v) in attrs {
                own.extend(tokenize(k));
                own.extend(tokenize(v));
            }
        }
        for &c in node.children() {
            if let Some(t) = tree.node(c).text() {
                own.extend(tokenize(t));
            }
        }
        self.words.iter().all(|w| own.iter().any(|o| o == w))
    }
}

/// A whole pattern: a single-rooted tree of [`PatternNode`]s.
///
/// Pattern nodes are addressed by their *pre-order index* in match results;
/// [`PatternTree::nodes`] yields them in that order.
#[derive(Clone, Debug)]
pub struct PatternTree {
    /// The root pattern node. The root's `edge` is ignored; the root may
    /// bind to any element of the forest (not only to roots), matching the
    /// `//restaurant` idiom of the paper's examples.
    pub root: PatternNode,
}

impl PatternTree {
    /// Wraps a root node.
    pub fn new(root: PatternNode) -> Self {
        PatternTree { root }
    }

    /// All pattern nodes in pre-order.
    pub fn nodes(&self) -> Vec<&PatternNode> {
        let mut out = Vec::new();
        fn walk<'a>(n: &'a PatternNode, out: &mut Vec<&'a PatternNode>) {
            out.push(n);
            for c in &n.children {
                walk(c, out);
            }
        }
        walk(&self.root, &mut out);
        out
    }

    /// Number of pattern nodes.
    pub fn len(&self) -> usize {
        self.nodes().len()
    }

    /// True if the pattern has no nodes (never: a root always exists).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Pre-order indices of projected nodes (if none are marked, the root
    /// is projected by convention).
    pub fn projected(&self) -> Vec<usize> {
        let nodes = self.nodes();
        let proj: Vec<usize> =
            nodes.iter().enumerate().filter(|(_, n)| n.project).map(|(i, _)| i).collect();
        if proj.is_empty() {
            vec![0]
        } else {
            proj
        }
    }

    /// Every distinct word the pattern needs from the full-text index:
    /// tag names and content words, in pre-order, deduplicated.
    pub fn lookup_words(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for n in self.nodes() {
            if let Some(t) = &n.tag {
                let w = t.to_lowercase();
                if !out.contains(&w) {
                    out.push(w);
                }
            }
            for w in &n.words {
                if !out.contains(w) {
                    out.push(w.clone());
                }
            }
        }
        out
    }
}

/// One match: element bindings indexed by pattern-node pre-order index.
pub type Bindings = Vec<NodeId>;

/// Matches a pattern against an in-memory tree, returning every complete
/// binding in document order of the root binding. This is the direct
/// (index-free) matcher used by the stratum baseline and as the oracle for
/// the FTI-based `PatternScan`.
pub fn match_tree(tree: &Tree, pattern: &PatternTree) -> Vec<Bindings> {
    let n_nodes = pattern.len();
    let mut results = Vec::new();
    for cand in tree.iter() {
        if !tree.node(cand).is_element() {
            continue;
        }
        if !pattern.root.matches_node(tree, cand) {
            continue;
        }
        if pattern.root.at_root && tree.node(cand).parent().is_some() {
            continue;
        }
        let mut binding = vec![cand; 1];
        binding.reserve(n_nodes);
        match_children(tree, &pattern.root, cand, &mut binding, &mut results);
    }
    results
}

fn match_children(
    tree: &Tree,
    pnode: &PatternNode,
    bound: NodeId,
    binding: &mut Vec<NodeId>,
    results: &mut Vec<Bindings>,
) {
    match_children_rec(tree, pnode, bound, 0, binding, results);
}

fn match_children_rec(
    tree: &Tree,
    pnode: &PatternNode,
    bound: NodeId,
    child_idx: usize,
    binding: &mut Vec<NodeId>,
    results: &mut Vec<Bindings>,
) {
    if child_idx == pnode.children.len() {
        results.push(binding.clone());
        return;
    }
    let pc = &pnode.children[child_idx];
    let candidates: Vec<NodeId> = match pc.edge {
        PatternEdge::Child => tree
            .node(bound)
            .children()
            .iter()
            .copied()
            .filter(|&c| pc.matches_node(tree, c))
            .collect(),
        PatternEdge::Descendant => {
            tree.descendants(bound).filter(|&d| d != bound && pc.matches_node(tree, d)).collect()
        }
    };
    for cand in candidates {
        let mark = binding.len();
        binding.push(cand);
        // Recurse into pc's own children first, then continue with our
        // remaining children for every completion of pc's subtree. To keep
        // this composable we capture completions of pc's subtree.
        let mut sub = Vec::new();
        match_children(tree, pc, cand, binding, &mut sub);
        binding.truncate(mark);
        for completed in sub {
            let mut b = completed;
            let keep = b.len();
            std::mem::swap(binding, &mut b);
            match_children_rec(tree, pnode, bound, child_idx + 1, binding, results);
            std::mem::swap(binding, &mut b);
            debug_assert_eq!(b.len(), keep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document;

    fn guide() -> Tree {
        parse_document(
            r#"<guide>
                 <restaurant category="italian"><name>Napoli</name><price>15</price></restaurant>
                 <restaurant><name>Akropolis</name><price>13</price></restaurant>
                 <bar><name>Napoli Bar</name></bar>
               </guide>"#,
        )
        .unwrap()
    }

    #[test]
    fn single_node_tag_pattern() {
        let t = guide();
        let p = PatternTree::new(PatternNode::tag("restaurant").project());
        let m = match_tree(&t, &p);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn word_constraint_on_same_node() {
        let t = guide();
        // Elements named `name` containing the word "napoli".
        let p = PatternTree::new(PatternNode::tag("name").word("Napoli"));
        let m = match_tree(&t, &p);
        assert_eq!(m.len(), 2, "restaurant Napoli and Napoli Bar");
    }

    #[test]
    fn parent_edge() {
        let t = guide();
        // restaurant isParentOf name(napoli)
        let p = PatternTree::new(
            PatternNode::tag("restaurant").project().child(PatternNode::tag("name").word("napoli")),
        );
        let m = match_tree(&t, &p);
        assert_eq!(m.len(), 1);
        let rest = m[0][0];
        assert_eq!(t.node(rest).attr("category"), Some("italian"));
    }

    #[test]
    fn ancestor_edge() {
        let t = guide();
        // guide isAscendantOf name — matches all three names.
        let p = PatternTree::new(
            PatternNode::tag("guide").descendant(PatternNode::tag("name").project()),
        );
        let m = match_tree(&t, &p);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn multi_child_conjunction() {
        let t = guide();
        // restaurant with BOTH a name and a price child.
        let p = PatternTree::new(
            PatternNode::tag("restaurant")
                .child(PatternNode::tag("name"))
                .child(PatternNode::tag("price")),
        );
        assert_eq!(match_tree(&t, &p).len(), 2);
        // bar has no price → pattern with any element + price matches only restaurants.
        let p2 = PatternTree::new(PatternNode::any().child(PatternNode::tag("price")));
        assert_eq!(match_tree(&t, &p2).len(), 2);
    }

    #[test]
    fn attribute_words_match() {
        let t = guide();
        let p = PatternTree::new(PatternNode::tag("restaurant").word("italian"));
        assert_eq!(match_tree(&t, &p).len(), 1);
    }

    #[test]
    fn cartesian_combinations() {
        let t = parse_document("<a><b>x</b><b>y</b><c>1</c><c>2</c></a>").unwrap();
        let p = PatternTree::new(
            PatternNode::tag("a")
                .child(PatternNode::tag("b").project())
                .child(PatternNode::tag("c").project()),
        );
        let m = match_tree(&t, &p);
        assert_eq!(m.len(), 4, "2 b's × 2 c's");
        // Bindings have 3 entries: a, b, c in pre-order.
        assert!(m.iter().all(|b| b.len() == 3));
    }

    #[test]
    fn projection_defaults_to_root() {
        let p = PatternTree::new(PatternNode::tag("x").child(PatternNode::tag("y")));
        assert_eq!(p.projected(), vec![0]);
        let p2 = PatternTree::new(PatternNode::tag("x").child(PatternNode::tag("y").project()));
        assert_eq!(p2.projected(), vec![1]);
    }

    #[test]
    fn lookup_words_collects_tags_and_words() {
        let p = PatternTree::new(
            PatternNode::tag("restaurant")
                .child(PatternNode::tag("name").word("napoli"))
                .child(PatternNode::tag("price")),
        );
        assert_eq!(p.lookup_words(), vec!["restaurant", "name", "napoli", "price"]);
    }

    #[test]
    fn nested_grandchild_pattern() {
        let t = guide();
        // guide -> restaurant -> name(akropolis), all parent edges.
        let p = PatternTree::new(
            PatternNode::tag("guide").child(
                PatternNode::tag("restaurant")
                    .project()
                    .child(PatternNode::tag("name").word("akropolis")),
            ),
        );
        let m = match_tree(&t, &p);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn no_match_is_empty() {
        let t = guide();
        let p = PatternTree::new(PatternNode::tag("hotel"));
        assert!(match_tree(&t, &p).is_empty());
    }

    #[test]
    fn text_nodes_never_match() {
        let t = parse_document("<a>x</a>").unwrap();
        let p = PatternTree::new(PatternNode::any());
        assert_eq!(match_tree(&t, &p).len(), 1);
    }
}
