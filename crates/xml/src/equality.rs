//! Value equality between nodes and subtrees (§7.4).
//!
//! The paper distinguishes the XML query algebra's two equality operators:
//! `=` compares *contents* and `==` compares *identity* (EIDs). Identity
//! comparison is a plain [`txdb_base::Eid`] comparison and needs no code
//! here; this module implements the two content-equality flavours the paper
//! discusses:
//!
//! * [`shallow_eq`] — the nodes themselves are equal: same kind, name,
//!   attribute set, and — for the common `<name>Napoli</name>` shape — the
//!   same immediate text content. The paper recommends shallow equality
//!   (combined with similarity) as the practical choice.
//! * [`deep_eq`] — "the two subtrees match completely, both in elements and
//!   values"; recursive, order-sensitive.
//!
//! XIDs and timestamps never participate in value equality: two versions of
//! the same element compare equal iff their contents do.

use crate::tree::{NodeId, NodeKind, Tree};

/// Shallow content equality between two nodes (possibly from different
/// trees): same kind; for elements, same name, same attributes (order
/// insensitive) and same concatenation of *immediate* text children; for
/// text nodes, same value.
pub fn shallow_eq(ta: &Tree, a: NodeId, tb: &Tree, b: NodeId) -> bool {
    match (&ta.node(a).kind, &tb.node(b).kind) {
        (NodeKind::Text { value: va }, NodeKind::Text { value: vb }) => va == vb,
        (NodeKind::Element { name: na, attrs: aa }, NodeKind::Element { name: nb, attrs: ab }) => {
            if na != nb || aa.len() != ab.len() {
                return false;
            }
            // Attribute order is irrelevant to value equality.
            for (k, v) in aa {
                if ab.iter().find(|(k2, _)| k2 == k).map(|(_, v2)| v2) != Some(v) {
                    return false;
                }
            }
            immediate_text(ta, a) == immediate_text(tb, b)
        }
        _ => false,
    }
}

/// Deep content equality: shallow equality at every level plus identical
/// child sequences (document order matters, as in the XML data model).
pub fn deep_eq(ta: &Tree, a: NodeId, tb: &Tree, b: NodeId) -> bool {
    match (&ta.node(a).kind, &tb.node(b).kind) {
        (NodeKind::Text { value: va }, NodeKind::Text { value: vb }) => va == vb,
        (NodeKind::Element { name: na, attrs: aa }, NodeKind::Element { name: nb, attrs: ab }) => {
            if na != nb || aa.len() != ab.len() {
                return false;
            }
            for (k, v) in aa {
                if ab.iter().find(|(k2, _)| k2 == k).map(|(_, v2)| v2) != Some(v) {
                    return false;
                }
            }
            let ca = ta.node(a).children();
            let cb = tb.node(b).children();
            ca.len() == cb.len() && ca.iter().zip(cb).all(|(&x, &y)| deep_eq(ta, x, tb, y))
        }
        _ => false,
    }
}

/// The concatenated *immediate* text children of an element (not the full
/// subtree text). This is what `R/name = "Napoli"` compares against when
/// `name` has a single text child.
pub fn immediate_text(tree: &Tree, id: NodeId) -> String {
    let mut out = String::new();
    for &c in tree.node(id).children() {
        if let Some(t) = tree.node(c).text() {
            out.push_str(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document;

    fn first_child(t: &Tree) -> NodeId {
        t.node(t.root().unwrap()).children()[0]
    }

    #[test]
    fn shallow_same_name_text() {
        let a = parse_document("<r><name>Napoli</name></r>").unwrap();
        let b = parse_document("<r><name>Napoli</name></r>").unwrap();
        assert!(shallow_eq(&a, first_child(&a), &b, first_child(&b)));
    }

    #[test]
    fn shallow_ignores_subelement_differences() {
        // Shallow equality on <r> looks only at name/attrs/immediate text.
        let a = parse_document("<g><r><name>N</name></r></g>").unwrap();
        let b = parse_document("<g><r><name>M</name></r></g>").unwrap();
        assert!(shallow_eq(&a, first_child(&a), &b, first_child(&b)));
        assert!(!deep_eq(&a, first_child(&a), &b, first_child(&b)));
    }

    #[test]
    fn shallow_sees_immediate_text() {
        let a = parse_document("<g><r>abc</r></g>").unwrap();
        let b = parse_document("<g><r>abd</r></g>").unwrap();
        assert!(!shallow_eq(&a, first_child(&a), &b, first_child(&b)));
    }

    #[test]
    fn attr_order_irrelevant_value_relevant() {
        let a = parse_document(r#"<x a="1" b="2"/>"#).unwrap();
        let b = parse_document(r#"<x b="2" a="1"/>"#).unwrap();
        let c = parse_document(r#"<x a="1" b="3"/>"#).unwrap();
        let d = parse_document(r#"<x a="1"/>"#).unwrap();
        let (ra, rb, rc, rd) =
            (a.root().unwrap(), b.root().unwrap(), c.root().unwrap(), d.root().unwrap());
        assert!(shallow_eq(&a, ra, &b, rb));
        assert!(deep_eq(&a, ra, &b, rb));
        assert!(!shallow_eq(&a, ra, &c, rc));
        assert!(!shallow_eq(&a, ra, &d, rd));
    }

    #[test]
    fn deep_is_order_sensitive() {
        let a = parse_document("<x><p/><q/></x>").unwrap();
        let b = parse_document("<x><q/><p/></x>").unwrap();
        assert!(!deep_eq(&a, a.root().unwrap(), &b, b.root().unwrap()));
    }

    #[test]
    fn deep_eq_full_subtree() {
        let src = r#"<restaurant category="i"><name>Napoli</name><price>15</price></restaurant>"#;
        let a = parse_document(src).unwrap();
        let b = parse_document(src).unwrap();
        assert!(deep_eq(&a, a.root().unwrap(), &b, b.root().unwrap()));
    }

    #[test]
    fn kind_mismatch_never_equal() {
        let a = parse_document("<x>t</x>").unwrap();
        let root = a.root().unwrap();
        let text = a.node(root).children()[0];
        assert!(!shallow_eq(&a, root, &a, text));
        assert!(!deep_eq(&a, root, &a, text));
    }

    #[test]
    fn equality_ignores_identity() {
        use txdb_base::{Timestamp, Xid};
        let a = parse_document("<x>t</x>").unwrap();
        let mut b = parse_document("<x>t</x>").unwrap();
        let ids: Vec<_> = b.iter().collect();
        for id in ids {
            b.node_mut(id).xid = Xid(42);
            b.node_mut(id).ts = Timestamp::from_secs(9);
        }
        assert!(deep_eq(&a, a.root().unwrap(), &b, b.root().unwrap()));
    }
}
