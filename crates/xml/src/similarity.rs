//! The similarity operator `~` (§7.4).
//!
//! The paper observes that neither deep value equality (too strict for web
//! data) nor EID identity (broken by delete-and-reintroduce) solves the
//! "same restaurant?" problem, and points to Theobald & Weikum's relevance-
//! based approach: *introduce a similarity operator ≈*, concluding that "a
//! combination of shallow equality and a similarity operator \[is\] the most
//! interesting solution".
//!
//! We implement similarity as the Dice coefficient over the multiset of
//! word tokens of two subtrees (element names, attribute values and text
//! all contribute, mirroring what the full-text index sees), which behaves
//! well for the short, record-like elements of the paper's examples:
//! reordered children, small edits and added sub-elements degrade the score
//! gradually instead of flipping it to zero.

use std::collections::HashMap;

use crate::tree::{NodeId, NodeKind, Tree};

/// Default threshold for the boolean `~` operator in the query language.
pub const DEFAULT_THRESHOLD: f64 = 0.6;

/// Splits a string into lower-cased word tokens (alphanumeric runs).
/// This is the same tokenization the full-text index uses.
pub fn tokenize(s: &str) -> impl Iterator<Item = String> + '_ {
    s.split(|c: char| !c.is_alphanumeric()).filter(|w| !w.is_empty()).map(|w| w.to_lowercase())
}

/// The token multiset of a subtree: element names, attribute keys/values and
/// text content.
pub fn token_bag(tree: &Tree, id: NodeId) -> HashMap<String, u32> {
    let mut bag: HashMap<String, u32> = HashMap::new();
    for n in tree.descendants(id) {
        match &tree.node(n).kind {
            NodeKind::Element { name, attrs } => {
                for t in tokenize(name) {
                    *bag.entry(t).or_default() += 1;
                }
                for (k, v) in attrs {
                    for t in tokenize(k).chain(tokenize(v)) {
                        *bag.entry(t).or_default() += 1;
                    }
                }
            }
            NodeKind::Text { value } => {
                for t in tokenize(value) {
                    *bag.entry(t).or_default() += 1;
                }
            }
        }
    }
    bag
}

/// Dice coefficient between two token multisets: `2·|A∩B| / (|A|+|B|)`,
/// in `[0, 1]`. Two empty bags are fully similar.
pub fn dice(a: &HashMap<String, u32>, b: &HashMap<String, u32>) -> f64 {
    let size_a: u32 = a.values().sum();
    let size_b: u32 = b.values().sum();
    if size_a == 0 && size_b == 0 {
        return 1.0;
    }
    let mut inter = 0u32;
    for (t, &ca) in a {
        if let Some(&cb) = b.get(t) {
            inter += ca.min(cb);
        }
    }
    2.0 * inter as f64 / (size_a + size_b) as f64
}

/// Similarity score between two subtrees, in `[0, 1]`.
pub fn similarity(ta: &Tree, a: NodeId, tb: &Tree, b: NodeId) -> f64 {
    dice(&token_bag(ta, a), &token_bag(tb, b))
}

/// The boolean `~` operator: similarity above `threshold`.
pub fn similar(ta: &Tree, a: NodeId, tb: &Tree, b: NodeId, threshold: f64) -> bool {
    similarity(ta, a, tb, b) >= threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document;

    fn sim(a: &str, b: &str) -> f64 {
        let ta = parse_document(a).unwrap();
        let tb = parse_document(b).unwrap();
        similarity(&ta, ta.root().unwrap(), &tb, tb.root().unwrap())
    }

    #[test]
    fn identical_is_one() {
        let s = sim(
            "<r><name>Napoli</name><price>15</price></r>",
            "<r><name>Napoli</name><price>15</price></r>",
        );
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reordered_children_still_one() {
        let s = sim(
            "<r><name>Napoli</name><price>15</price></r>",
            "<r><price>15</price><name>Napoli</name></r>",
        );
        assert!((s - 1.0).abs() < 1e-9, "bag model ignores order, got {s}");
    }

    #[test]
    fn small_edit_degrades_gracefully() {
        let s = sim(
            "<r><name>Napoli</name><price>15</price><addr>Main Street 1</addr></r>",
            "<r><name>Napoli</name><price>18</price><addr>Main Street 1</addr></r>",
        );
        assert!(s > 0.7 && s < 1.0, "price change should stay similar: {s}");
    }

    #[test]
    fn unrelated_elements_low() {
        let s = sim(
            "<r><name>Napoli</name><price>15</price><addr>Main Street 1</addr></r>",
            "<r><name>Akropolis</name><price>13</price><addr>Harbour Road 99</addr></r>",
        );
        assert!(s < DEFAULT_THRESHOLD, "different restaurants: {s}");
    }

    #[test]
    fn reintroduced_entry_high_similarity() {
        // §7.4: an entry accidentally deleted and reintroduced gets a new
        // EID; similarity must still recognise it.
        let v1 = "<restaurant><name>Napoli</name><price>15</price></restaurant>";
        let v3 = "<restaurant><name>Napoli</name><price>15</price></restaurant>";
        assert!(sim(v1, v3) >= DEFAULT_THRESHOLD);
    }

    #[test]
    fn tokenize_splits_and_lowercases() {
        let toks: Vec<String> = tokenize("Main Street-1, Trondheim").collect();
        assert_eq!(toks, ["main", "street", "1", "trondheim"]);
    }

    #[test]
    fn dice_empty_bags() {
        assert_eq!(dice(&HashMap::new(), &HashMap::new()), 1.0);
        let mut a = HashMap::new();
        a.insert("x".to_string(), 1);
        assert_eq!(dice(&a, &HashMap::new()), 0.0);
    }

    #[test]
    fn multiset_counts_matter() {
        let s1 = sim("<a>x x x</a>", "<a>x</a>");
        assert!(s1 < 1.0, "repetition differs: {s1}");
    }
}
