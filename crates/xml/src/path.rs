//! A small XPath-like path language.
//!
//! The paper's queries navigate with `/` (child) and `//` (descendant-or-
//! self, §5: "many queries can be expected to contain the `//` operator").
//! This module implements exactly that fragment, which is all the query
//! language and the stratum baseline need:
//!
//! ```text
//! path    := '/'? step ( '/' step | '//' step )*  |  '//' step ( ... )*
//! step    := name | '*' | 'text()'
//! ```
//!
//! Evaluation returns nodes in document order without duplicates. An
//! absolute path starts from the forest roots (the leading step must match a
//! root); a relative path starts from the children of the context node.

use txdb_base::{Error, Result};

use crate::tree::{NodeId, Tree};

/// Axis connecting a step to the previous one.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Axis {
    /// `/` — children of the current node set.
    Child,
    /// `//` — descendants (any depth) of the current node set.
    Descendant,
}

/// Node test of a step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Test {
    /// Match elements with this tag name.
    Name(String),
    /// `*` — match any element.
    AnyElement,
    /// `text()` — match text nodes.
    Text,
}

/// One step of a path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Step {
    /// How this step relates to the previous node set.
    pub axis: Axis,
    /// What the step selects.
    pub test: Test,
}

/// A parsed path expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Path {
    /// The steps, in order.
    pub steps: Vec<Step>,
    /// True when written with a leading `/` or `//` (absolute).
    pub absolute: bool,
}

impl Path {
    /// Parses a path expression.
    pub fn parse(input: &str) -> Result<Path> {
        let s = input.trim();
        let err =
            |m: &str| Error::QueryParse { offset: 0, message: format!("{m} in path `{input}`") };
        if s.is_empty() {
            return Err(err("empty path"));
        }
        let mut rest = s;
        let absolute = rest.starts_with('/');
        let mut steps = Vec::new();
        let mut axis = if rest.starts_with("//") {
            rest = &rest[2..];
            Axis::Descendant
        } else if absolute {
            rest = &rest[1..];
            Axis::Child
        } else {
            Axis::Child
        };
        loop {
            let end = rest.find('/').unwrap_or(rest.len());
            let (tok, tail) = rest.split_at(end);
            let tok = tok.trim();
            if tok.is_empty() {
                return Err(err("empty step"));
            }
            let test = match tok {
                "*" => Test::AnyElement,
                "text()" => Test::Text,
                name => {
                    if !name
                        .chars()
                        .all(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'))
                    {
                        return Err(err("invalid step name"));
                    }
                    Test::Name(name.to_string())
                }
            };
            steps.push(Step { axis, test });
            if tail.is_empty() {
                break;
            }
            if let Some(t) = tail.strip_prefix("//") {
                axis = Axis::Descendant;
                rest = t;
            } else if let Some(t) = tail.strip_prefix('/') {
                axis = Axis::Child;
                rest = t;
            } else {
                unreachable!();
            }
            if rest.is_empty() {
                return Err(err("trailing slash"));
            }
        }
        Ok(Path { steps, absolute })
    }

    /// Evaluates the path from the forest roots (absolute semantics: the
    /// first `Child` step matches the roots themselves).
    pub fn eval_roots(&self, tree: &Tree) -> Vec<NodeId> {
        let mut current: Vec<NodeId> = Vec::new();
        for (i, step) in self.steps.iter().enumerate() {
            let mut next = Vec::new();
            if i == 0 {
                match step.axis {
                    Axis::Child => {
                        for &r in tree.roots() {
                            if test_matches(tree, r, &step.test) {
                                next.push(r);
                            }
                        }
                    }
                    Axis::Descendant => {
                        for n in tree.iter() {
                            if test_matches(tree, n, &step.test) {
                                next.push(n);
                            }
                        }
                    }
                }
            } else {
                apply_step(tree, &current, step, &mut next);
            }
            current = next;
            if current.is_empty() {
                break;
            }
        }
        current
    }

    /// Evaluates the path relative to `ctx` (the first step selects among
    /// `ctx`'s children or descendants).
    pub fn eval_from(&self, tree: &Tree, ctx: NodeId) -> Vec<NodeId> {
        let mut current = vec![ctx];
        for step in &self.steps {
            let mut next = Vec::new();
            apply_step(tree, &current, step, &mut next);
            current = next;
            if current.is_empty() {
                break;
            }
        }
        current
    }

    /// Convenience: evaluates relative to `ctx` and returns the concatenated
    /// text content of the first match, if any.
    pub fn first_text(&self, tree: &Tree, ctx: NodeId) -> Option<String> {
        self.eval_from(tree, ctx).first().map(|&n| match tree.node(n).text() {
            Some(t) => t.to_string(),
            None => tree.text_content(n),
        })
    }

    /// The final step's name, if it is a name test (used by planners to
    /// know which word to look up in the full-text index).
    pub fn last_name(&self) -> Option<&str> {
        match self.steps.last().map(|s| &s.test) {
            Some(Test::Name(n)) => Some(n),
            _ => None,
        }
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            let sep = match (i, step.axis, self.absolute) {
                (0, Axis::Child, false) => "",
                (0, Axis::Child, true) => "/",
                (_, Axis::Child, _) => "/",
                (_, Axis::Descendant, _) => "//",
            };
            f.write_str(sep)?;
            match &step.test {
                Test::Name(n) => f.write_str(n)?,
                Test::AnyElement => f.write_str("*")?,
                Test::Text => f.write_str("text()")?,
            }
        }
        Ok(())
    }
}

fn test_matches(tree: &Tree, n: NodeId, test: &Test) -> bool {
    let node = tree.node(n);
    match test {
        Test::Name(name) => node.name() == Some(name.as_str()),
        Test::AnyElement => node.is_element(),
        Test::Text => node.text().is_some(),
    }
}

fn apply_step(tree: &Tree, current: &[NodeId], step: &Step, out: &mut Vec<NodeId>) {
    match step.axis {
        Axis::Child => {
            for &n in current {
                for &c in tree.node(n).children() {
                    if test_matches(tree, c, &step.test) {
                        out.push(c);
                    }
                }
            }
        }
        Axis::Descendant => {
            // Document-order, duplicate-free: walk each context subtree but
            // skip nodes already covered by an earlier context ancestor.
            let mut seen = std::collections::HashSet::new();
            for &n in current {
                for d in tree.descendants(n) {
                    if d == n {
                        continue;
                    }
                    if test_matches(tree, d, &step.test) && seen.insert(d) {
                        out.push(d);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document;

    fn doc() -> Tree {
        parse_document(
            "<guide>\
               <restaurant><name>Napoli</name><price>15</price></restaurant>\
               <restaurant><name>Akropolis</name><price>13</price></restaurant>\
               <bar><name>Corner</name></bar>\
             </guide>",
        )
        .unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for p in ["/guide/restaurant", "//restaurant/name", "a//b/c", "//x", "*/text()"] {
            let parsed = Path::parse(p).unwrap();
            assert_eq!(parsed.to_string(), p);
        }
    }

    #[test]
    fn parse_rejects_bad_paths() {
        for bad in ["", "/", "a/", "a//", "a b/c", "a/<b"] {
            assert!(Path::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn absolute_child_path() {
        let t = doc();
        let p = Path::parse("/guide/restaurant/name").unwrap();
        let hits = p.eval_roots(&t);
        assert_eq!(hits.len(), 2);
        assert_eq!(t.text_content(hits[0]), "Napoli");
        assert_eq!(t.text_content(hits[1]), "Akropolis");
    }

    #[test]
    fn descendant_path() {
        let t = doc();
        assert_eq!(Path::parse("//name").unwrap().eval_roots(&t).len(), 3);
        assert_eq!(Path::parse("//restaurant//text()").unwrap().eval_roots(&t).len(), 4);
    }

    #[test]
    fn wildcard_step() {
        let t = doc();
        assert_eq!(Path::parse("/guide/*").unwrap().eval_roots(&t).len(), 3);
        assert_eq!(Path::parse("/guide/*/name").unwrap().eval_roots(&t).len(), 3);
    }

    #[test]
    fn relative_evaluation() {
        let t = doc();
        let rest = Path::parse("/guide/restaurant").unwrap().eval_roots(&t)[0];
        let p = Path::parse("price").unwrap();
        assert_eq!(p.first_text(&t, rest), Some("15".to_string()));
        let p2 = Path::parse("price/text()").unwrap();
        assert_eq!(p2.first_text(&t, rest), Some("15".to_string()));
    }

    #[test]
    fn root_mismatch_yields_empty() {
        let t = doc();
        assert!(Path::parse("/nosuch/name").unwrap().eval_roots(&t).is_empty());
    }

    #[test]
    fn descendant_no_duplicates() {
        let t = parse_document("<a><b><b><c/></b></b></a>").unwrap();
        // `//b//c`: c is a descendant of both b's, but must appear once.
        let hits = Path::parse("//b//c").unwrap().eval_roots(&t);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn leading_descendant_matches_root_too() {
        let t = parse_document("<a><a/></a>").unwrap();
        assert_eq!(Path::parse("//a").unwrap().eval_roots(&t).len(), 2);
    }

    #[test]
    fn last_name() {
        assert_eq!(Path::parse("//restaurant/name").unwrap().last_name(), Some("name"));
        assert_eq!(Path::parse("//restaurant/*").unwrap().last_name(), None);
    }
}
