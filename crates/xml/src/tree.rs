//! Arena-based XML trees with persistent element identity and timestamps.
//!
//! One [`Tree`] represents one *version* of one document, viewed — as the
//! paper's §4 prescribes — as a forest of trees (usually a single root).
//! Every node carries
//!
//! * an [`Xid`]: the persistent element identifier (§3.2) assigned by the
//!   database when the node first appears and preserved across versions by
//!   the diff; `Xid::NONE` on freshly parsed/built trees that have not yet
//!   been registered, and
//! * a [`Timestamp`]: "the time of update of the element or one of its
//!   children" (§4) — updating a node touches the timestamps of all its
//!   ancestors, implemented eagerly by [`Tree::touch`].
//!
//! Nodes live in a `Vec` arena addressed by [`NodeId`]; structural edits
//! recycle slots through a free list, so `NodeId`s are only meaningful
//! within one tree and must not be stored across versions (that is what
//! XIDs are for).

use std::collections::HashMap;

use txdb_base::{Timestamp, Xid};

/// Index of a node within one [`Tree`]'s arena.
///
/// Valid only for the tree that produced it; cross-version references must
/// use [`Xid`]s.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    #[inline]
    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// What a node is: an element with a tag name and attributes, or a text
/// node. Attributes are stored on the element, ordered as written.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// An element node like `<restaurant category="italian">`.
    Element {
        /// Tag name (qualified names are kept verbatim).
        name: String,
        /// Attributes in document order.
        attrs: Vec<(String, String)>,
    },
    /// A text node.
    Text {
        /// The character data (already entity-decoded).
        value: String,
    },
}

impl NodeKind {
    /// The tag name for elements, `None` for text nodes.
    pub fn name(&self) -> Option<&str> {
        match self {
            NodeKind::Element { name, .. } => Some(name),
            NodeKind::Text { .. } => None,
        }
    }

    /// The character data for text nodes, `None` for elements.
    pub fn text(&self) -> Option<&str> {
        match self {
            NodeKind::Text { value } => Some(value),
            NodeKind::Element { .. } => None,
        }
    }
}

/// One node of a document version.
#[derive(Clone, Debug)]
pub struct Node {
    /// Persistent element identity (§3.2); `Xid::NONE` until assigned.
    pub xid: Xid,
    /// Time of last update of this node or any descendant (§4).
    pub ts: Timestamp,
    /// Element or text payload.
    pub kind: NodeKind,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

impl Node {
    /// The node's parent, `None` for roots.
    #[inline]
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// The node's children in document order.
    #[inline]
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// Convenience: the element name, or `None` for text nodes.
    #[inline]
    pub fn name(&self) -> Option<&str> {
        self.kind.name()
    }

    /// Convenience: the text value, or `None` for elements.
    #[inline]
    pub fn text(&self) -> Option<&str> {
        self.kind.text()
    }

    /// Looks up an attribute value on an element node.
    pub fn attr(&self, key: &str) -> Option<&str> {
        match &self.kind {
            NodeKind::Element { attrs, .. } => {
                attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
            }
            NodeKind::Text { .. } => None,
        }
    }

    /// True for element nodes.
    #[inline]
    pub fn is_element(&self) -> bool {
        matches!(self.kind, NodeKind::Element { .. })
    }
}

/// One version of one document: a forest of trees in an arena.
#[derive(Clone, Debug, Default)]
pub struct Tree {
    nodes: Vec<Node>,
    roots: Vec<NodeId>,
    free: Vec<NodeId>,
    live: usize,
}

impl Tree {
    /// Creates an empty forest.
    pub fn new() -> Self {
        Tree::default()
    }

    /// The roots of the forest, in document order.
    #[inline]
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// The single root, if the forest has exactly one tree.
    pub fn root(&self) -> Option<NodeId> {
        match self.roots.as_slice() {
            [r] => Some(*r),
            _ => None,
        }
    }

    /// Number of live nodes in the forest.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the forest has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Borrows a node.
    ///
    /// # Panics
    /// Panics if `id` was detached and recycled; `NodeId`s must not be kept
    /// across structural edits.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.idx()]
    }

    /// Mutably borrows a node (see [`Tree::node`] for validity rules).
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.idx()]
    }

    fn alloc(&mut self, node: Node) -> NodeId {
        self.live += 1;
        if let Some(id) = self.free.pop() {
            self.nodes[id.idx()] = node;
            id
        } else {
            let id = NodeId(self.nodes.len() as u32);
            self.nodes.push(node);
            id
        }
    }

    /// Creates a detached element node.
    pub fn new_element(&mut self, name: impl Into<String>) -> NodeId {
        self.alloc(Node {
            xid: Xid::NONE,
            ts: Timestamp::ZERO,
            kind: NodeKind::Element { name: name.into(), attrs: Vec::new() },
            parent: None,
            children: Vec::new(),
        })
    }

    /// Creates a detached text node.
    pub fn new_text(&mut self, value: impl Into<String>) -> NodeId {
        self.alloc(Node {
            xid: Xid::NONE,
            ts: Timestamp::ZERO,
            kind: NodeKind::Text { value: value.into() },
            parent: None,
            children: Vec::new(),
        })
    }

    /// Appends a detached node as the last root of the forest.
    pub fn push_root(&mut self, id: NodeId) {
        debug_assert!(self.nodes[id.idx()].parent.is_none());
        self.roots.push(id);
    }

    /// Inserts a detached node as root at position `pos`.
    pub fn insert_root(&mut self, pos: usize, id: NodeId) {
        debug_assert!(self.nodes[id.idx()].parent.is_none());
        self.roots.insert(pos.min(self.roots.len()), id);
    }

    /// Appends `child` (detached) as the last child of `parent`.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        debug_assert!(self.nodes[child.idx()].parent.is_none());
        self.nodes[child.idx()].parent = Some(parent);
        self.nodes[parent.idx()].children.push(child);
    }

    /// Inserts `child` (detached) at position `pos` among `parent`'s
    /// children (clamped to the end).
    pub fn insert_child(&mut self, parent: NodeId, pos: usize, child: NodeId) {
        debug_assert!(self.nodes[child.idx()].parent.is_none());
        self.nodes[child.idx()].parent = Some(parent);
        let cs = &mut self.nodes[parent.idx()].children;
        let pos = pos.min(cs.len());
        cs.insert(pos, child);
    }

    /// Detaches `id` from its parent (or from the root list), leaving its
    /// subtree intact but unrooted. Returns the position it occupied.
    pub fn detach(&mut self, id: NodeId) -> usize {
        match self.nodes[id.idx()].parent.take() {
            Some(p) => {
                let cs = &mut self.nodes[p.idx()].children;
                let pos = cs.iter().position(|&c| c == id).expect("child in parent");
                cs.remove(pos);
                pos
            }
            None => {
                let pos = self.roots.iter().position(|&r| r == id).expect("root in forest");
                self.roots.remove(pos);
                pos
            }
        }
    }

    /// Detaches and frees the whole subtree rooted at `id`.
    pub fn remove_subtree(&mut self, id: NodeId) {
        self.detach(id);
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            stack.extend_from_slice(&self.nodes[n.idx()].children);
            self.nodes[n.idx()].children.clear();
            self.nodes[n.idx()].parent = None;
            self.nodes[n.idx()].kind = NodeKind::Text { value: String::new() };
            self.nodes[n.idx()].xid = Xid::NONE;
            self.free.push(n);
            self.live -= 1;
        }
    }

    /// The position of `id` among its siblings (or among the roots).
    pub fn position(&self, id: NodeId) -> usize {
        match self.nodes[id.idx()].parent {
            Some(p) => {
                self.nodes[p.idx()].children.iter().position(|&c| c == id).expect("child in parent")
            }
            None => self.roots.iter().position(|&r| r == id).expect("root in forest"),
        }
    }

    /// Sets the string value of a text node.
    ///
    /// # Panics
    /// Panics if `id` is an element.
    pub fn set_text(&mut self, id: NodeId, value: impl Into<String>) {
        match &mut self.nodes[id.idx()].kind {
            NodeKind::Text { value: v } => *v = value.into(),
            NodeKind::Element { .. } => panic!("set_text on element node"),
        }
    }

    /// Sets (inserts or replaces) an attribute on an element node.
    ///
    /// # Panics
    /// Panics if `id` is a text node.
    pub fn set_attr(&mut self, id: NodeId, key: impl Into<String>, value: impl Into<String>) {
        let (key, value) = (key.into(), value.into());
        match &mut self.nodes[id.idx()].kind {
            NodeKind::Element { attrs, .. } => {
                if let Some(slot) = attrs.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = value;
                } else {
                    attrs.push((key, value));
                }
            }
            NodeKind::Text { .. } => panic!("set_attr on text node"),
        }
    }

    /// Removes an attribute; returns the old value if present.
    pub fn remove_attr(&mut self, id: NodeId, key: &str) -> Option<String> {
        match &mut self.nodes[id.idx()].kind {
            NodeKind::Element { attrs, .. } => {
                attrs.iter().position(|(k, _)| k == key).map(|i| attrs.remove(i).1)
            }
            NodeKind::Text { .. } => None,
        }
    }

    /// Updates the timestamp of `id` and of every ancestor up to its root —
    /// the §4 rule "every update of an element also implies update of the
    /// element it is contained in".
    pub fn touch(&mut self, id: NodeId, ts: Timestamp) {
        let mut cur = Some(id);
        while let Some(n) = cur {
            let node = &mut self.nodes[n.idx()];
            if node.ts >= ts {
                break; // ancestors are at least as new already
            }
            node.ts = ts;
            cur = node.parent;
        }
    }

    /// Sets the timestamp of every node in the forest (used when storing a
    /// brand-new document: all elements are created at insertion time).
    pub fn stamp_all(&mut self, ts: Timestamp) {
        let ids: Vec<NodeId> = self.iter().collect();
        for id in ids {
            self.nodes[id.idx()].ts = ts;
        }
    }

    /// The *effective* timestamp of an element per the paper's §4 rule: "the
    /// time of update of the element or one of its children" — computed as
    /// the maximum direct timestamp over the subtree. Node `ts` fields store
    /// *direct* modification times; deletions and moves stamp the affected
    /// parent directly (see `txdb-delta`), so the subtree maximum is exactly
    /// the recursive rule without storing propagated values.
    pub fn effective_ts(&self, id: NodeId) -> Timestamp {
        self.descendants(id).map(|n| self.node(n).ts).max().unwrap_or(Timestamp::ZERO)
    }

    /// Iterates over all live nodes in document order (pre-order over each
    /// root in turn).
    pub fn iter(&self) -> DocOrderIter<'_> {
        let mut stack: Vec<NodeId> = self.roots.iter().rev().copied().collect();
        stack.reserve(16);
        DocOrderIter { tree: self, stack }
    }

    /// Iterates over the subtree rooted at `id` in pre-order (including `id`).
    pub fn descendants(&self, id: NodeId) -> DocOrderIter<'_> {
        DocOrderIter { tree: self, stack: vec![id] }
    }

    /// Iterates over `id`'s ancestors, nearest first (excluding `id`).
    pub fn ancestors(&self, id: NodeId) -> AncestorIter<'_> {
        AncestorIter { tree: self, cur: self.nodes[id.idx()].parent }
    }

    /// The root of the tree containing `id`.
    pub fn root_of(&self, id: NodeId) -> NodeId {
        self.ancestors(id).last().unwrap_or(id)
    }

    /// The concatenated text content of the subtree rooted at `id`
    /// (XPath `string()` semantics).
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        for n in self.descendants(id) {
            if let Some(t) = self.node(n).text() {
                out.push_str(t);
            }
        }
        out
    }

    /// Finds the live node with the given XID (linear scan; the database
    /// layer keeps an index for hot paths).
    pub fn find_xid(&self, xid: Xid) -> Option<NodeId> {
        if xid.is_none() {
            return None;
        }
        self.iter().find(|&n| self.node(n).xid == xid)
    }

    /// Builds a map XID → NodeId over the live forest.
    pub fn xid_map(&self) -> HashMap<Xid, NodeId> {
        let mut m = HashMap::with_capacity(self.live);
        for n in self.iter() {
            let x = self.node(n).xid;
            if !x.is_none() {
                m.insert(x, n);
            }
        }
        m
    }

    /// The chain of XIDs from the root down to `id`, inclusive. Used by the
    /// full-text index to decide parent/ancestor relationships (§7.2).
    pub fn xid_path(&self, id: NodeId) -> Vec<Xid> {
        let mut path: Vec<Xid> = self.ancestors(id).map(|a| self.node(a).xid).collect();
        path.reverse();
        path.push(self.node(id).xid);
        path
    }

    /// Deep-copies the subtree rooted at `src` in `from` into this tree,
    /// returning the new (detached) root. XIDs and timestamps are copied.
    pub fn copy_subtree_from(&mut self, from: &Tree, src: NodeId) -> NodeId {
        let node = from.node(src);
        let new = self.alloc(Node {
            xid: node.xid,
            ts: node.ts,
            kind: node.kind.clone(),
            parent: None,
            children: Vec::new(),
        });
        for &c in from.node(src).children() {
            let nc = self.copy_subtree_from(from, c);
            self.append_child(new, nc);
        }
        new
    }

    /// Extracts the subtree rooted at `id` as a new single-rooted tree,
    /// preserving XIDs and timestamps. Used by `ElementHistory` (§7.3.5) to
    /// filter out the subtree rooted at an EID.
    pub fn extract_subtree(&self, id: NodeId) -> Tree {
        let mut t = Tree::new();
        let root = t.copy_subtree_from(self, id);
        t.push_root(root);
        t
    }

    /// Checks internal arena invariants; used by tests and debug assertions.
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut seen = 0usize;
        for (i, root) in self.roots.iter().enumerate() {
            if self.nodes[root.idx()].parent.is_some() {
                return Err(format!("root #{i} has a parent"));
            }
        }
        for id in self.iter() {
            seen += 1;
            let n = self.node(id);
            for &c in n.children() {
                if self.nodes[c.idx()].parent != Some(id) {
                    return Err(format!("child {c:?} of {id:?} has wrong parent"));
                }
            }
            if n.text().is_some() && !n.children().is_empty() {
                return Err(format!("text node {id:?} has children"));
            }
        }
        if seen != self.live {
            return Err(format!("live count {} != reachable {}", self.live, seen));
        }
        Ok(())
    }
}

/// Pre-order iterator over a forest or subtree.
pub struct DocOrderIter<'a> {
    tree: &'a Tree,
    stack: Vec<NodeId>,
}

impl<'a> Iterator for DocOrderIter<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let children = self.tree.node(id).children();
        self.stack.extend(children.iter().rev());
        Some(id)
    }
}

/// Iterator over ancestors, nearest first.
pub struct AncestorIter<'a> {
    tree: &'a Tree,
    cur: Option<NodeId>,
}

impl<'a> Iterator for AncestorIter<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.cur?;
        self.cur = self.tree.node(id).parent();
        Some(id)
    }
}

/// Fluent builder for constructing trees in tests and examples.
///
/// ```
/// use txdb_xml::tree::TreeBuilder;
/// let tree = TreeBuilder::new()
///     .open("restaurant")
///     .open("name").text("Napoli").close()
///     .open("price").text("15").close()
///     .close()
///     .build();
/// assert_eq!(tree.len(), 5);
/// ```
#[derive(Default)]
pub struct TreeBuilder {
    tree: Tree,
    stack: Vec<NodeId>,
}

impl TreeBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a new element as a child of the current element (or as a root).
    pub fn open(mut self, name: &str) -> Self {
        let id = self.tree.new_element(name);
        match self.stack.last() {
            Some(&p) => self.tree.append_child(p, id),
            None => self.tree.push_root(id),
        }
        self.stack.push(id);
        self
    }

    /// Sets an attribute on the currently open element.
    pub fn attr(mut self, key: &str, value: &str) -> Self {
        let id = *self.stack.last().expect("attr outside element");
        self.tree.set_attr(id, key, value);
        self
    }

    /// Appends a text child to the currently open element.
    pub fn text(mut self, value: &str) -> Self {
        let id = self.tree.new_text(value);
        match self.stack.last() {
            Some(&p) => self.tree.append_child(p, id),
            None => self.tree.push_root(id),
        }
        self
    }

    /// Closes the currently open element.
    pub fn close(mut self) -> Self {
        self.stack.pop().expect("close without open");
        self
    }

    /// Finishes, returning the tree.
    ///
    /// # Panics
    /// Panics if elements are still open.
    pub fn build(self) -> Tree {
        assert!(self.stack.is_empty(), "unclosed elements in TreeBuilder");
        self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tree {
        TreeBuilder::new()
            .open("guide")
            .open("restaurant")
            .attr("category", "italian")
            .open("name")
            .text("Napoli")
            .close()
            .open("price")
            .text("15")
            .close()
            .close()
            .close()
            .build()
    }

    #[test]
    fn builder_produces_expected_shape() {
        let t = sample();
        t.check_consistency().unwrap();
        let root = t.root().unwrap();
        assert_eq!(t.node(root).name(), Some("guide"));
        let rest = t.node(root).children()[0];
        assert_eq!(t.node(rest).name(), Some("restaurant"));
        assert_eq!(t.node(rest).attr("category"), Some("italian"));
        assert_eq!(t.node(rest).children().len(), 2);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn doc_order_iteration() {
        let t = sample();
        let names: Vec<String> = t
            .iter()
            .map(|n| {
                t.node(n)
                    .name()
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("#{}", t.node(n).text().unwrap()))
            })
            .collect();
        assert_eq!(names, ["guide", "restaurant", "name", "#Napoli", "price", "#15"]);
    }

    #[test]
    fn ancestors_and_root_of() {
        let t = sample();
        let price_text = t.iter().last().unwrap();
        let anc: Vec<Option<String>> =
            t.ancestors(price_text).map(|a| t.node(a).name().map(str::to_string)).collect();
        assert_eq!(
            anc,
            [Some("price".to_string()), Some("restaurant".to_string()), Some("guide".to_string())]
        );
        assert_eq!(t.root_of(price_text), t.root().unwrap());
    }

    #[test]
    fn text_content_concatenates() {
        let t = sample();
        assert_eq!(t.text_content(t.root().unwrap()), "Napoli15");
    }

    #[test]
    fn detach_and_reinsert() {
        let mut t = sample();
        let root = t.root().unwrap();
        let rest = t.node(root).children()[0];
        let price = t.node(rest).children()[1];
        let pos = t.detach(price);
        assert_eq!(pos, 1);
        assert_eq!(t.node(rest).children().len(), 1);
        t.insert_child(rest, 0, price);
        assert_eq!(t.node(rest).children()[0], price);
        t.check_consistency().unwrap();
    }

    #[test]
    fn remove_subtree_recycles_slots() {
        let mut t = sample();
        let root = t.root().unwrap();
        let rest = t.node(root).children()[0];
        let before = t.len();
        t.remove_subtree(rest);
        assert_eq!(t.len(), before - 5);
        t.check_consistency().unwrap();
        // New allocations reuse freed slots.
        let n = t.new_element("fresh");
        t.append_child(root, n);
        assert_eq!(t.len(), before - 4);
        t.check_consistency().unwrap();
    }

    #[test]
    fn touch_propagates_to_ancestors() {
        let mut t = sample();
        let root = t.root().unwrap();
        let rest = t.node(root).children()[0];
        let name = t.node(rest).children()[0];
        let ts = Timestamp::from_secs(100);
        t.touch(name, ts);
        assert_eq!(t.node(name).ts, ts);
        assert_eq!(t.node(rest).ts, ts);
        assert_eq!(t.node(root).ts, ts);
        // Sibling untouched.
        let price = t.node(rest).children()[1];
        assert_eq!(t.node(price).ts, Timestamp::ZERO);
        // Touching with an older timestamp does not go backwards.
        t.touch(name, Timestamp::from_secs(50));
        assert_eq!(t.node(name).ts, ts);
    }

    #[test]
    fn stamp_all_sets_every_node() {
        let mut t = sample();
        let ts = Timestamp::from_secs(7);
        t.stamp_all(ts);
        assert!(t.iter().all(|n| t.node(n).ts == ts));
    }

    #[test]
    fn set_and_remove_attr() {
        let mut t = sample();
        let root = t.root().unwrap();
        let rest = t.node(root).children()[0];
        t.set_attr(rest, "category", "pizzeria");
        assert_eq!(t.node(rest).attr("category"), Some("pizzeria"));
        t.set_attr(rest, "stars", "3");
        assert_eq!(t.node(rest).attr("stars"), Some("3"));
        assert_eq!(t.remove_attr(rest, "stars"), Some("3".to_string()));
        assert_eq!(t.node(rest).attr("stars"), None);
        assert_eq!(t.remove_attr(rest, "stars"), None);
    }

    #[test]
    fn xid_path_and_map() {
        let mut t = sample();
        let ids: Vec<NodeId> = t.iter().collect();
        for (i, id) in ids.iter().enumerate() {
            t.node_mut(*id).xid = Xid(i as u64 + 1);
        }
        let price_text = *ids.last().unwrap();
        let path = t.xid_path(price_text);
        assert_eq!(path, vec![Xid(1), Xid(2), Xid(5), Xid(6)]);
        let map = t.xid_map();
        assert_eq!(map.len(), 6);
        assert_eq!(map[&Xid(5)], ids[4]);
        assert_eq!(t.find_xid(Xid(5)), Some(ids[4]));
        assert_eq!(t.find_xid(Xid::NONE), None);
        assert_eq!(t.find_xid(Xid(99)), None);
    }

    #[test]
    fn extract_subtree_preserves_identity() {
        let mut t = sample();
        let ids: Vec<NodeId> = t.iter().collect();
        for (i, id) in ids.iter().enumerate() {
            t.node_mut(*id).xid = Xid(i as u64 + 1);
        }
        let rest = ids[1];
        let sub = t.extract_subtree(rest);
        assert_eq!(sub.len(), 5);
        let r = sub.root().unwrap();
        assert_eq!(sub.node(r).xid, Xid(2));
        assert_eq!(sub.node(r).name(), Some("restaurant"));
        sub.check_consistency().unwrap();
    }

    #[test]
    fn forest_with_multiple_roots() {
        let mut t = Tree::new();
        let a = t.new_element("a");
        let b = t.new_element("b");
        t.push_root(a);
        t.push_root(b);
        assert_eq!(t.roots().len(), 2);
        assert_eq!(t.root(), None);
        t.check_consistency().unwrap();
        let collected: Vec<NodeId> = t.iter().collect();
        assert_eq!(collected, vec![a, b]);
        // insert_root positions correctly
        let c = t.new_element("c");
        t.insert_root(1, c);
        assert_eq!(t.roots(), &[a, c, b]);
    }

    #[test]
    #[should_panic(expected = "set_text on element")]
    fn set_text_on_element_panics() {
        let mut t = Tree::new();
        let e = t.new_element("x");
        t.set_text(e, "boom");
    }
}
