//! # txdb-wgen — workload and document generators
//!
//! The paper evaluates nothing quantitatively, so this crate provides the
//! synthetic workloads the derived experiment suite runs on (see
//! DESIGN.md §4-§5 for the substitution rationale):
//!
//! * [`restaurant`] — the restaurant guide of Figure 1 (exact), plus a
//!   parameterised generator of larger guides with price updates,
//!   openings and closings;
//! * [`tdocgen`] — a TDocGen-style generic temporal document generator:
//!   documents of configurable shape and vocabulary evolved by a
//!   parameterised update stream (update/insert/delete/move mix);
//! * [`crawler`] — a simulated web-warehouse feed (§3.1's second case):
//!   pages change on their own schedules, a crawler observes them at its
//!   own cadence, misses intermediate versions, and sees deletions late —
//!   the generator produces the *crawl event stream*;
//! * [`zipf`] — the Zipf sampler behind the vocabularies.
//!
//! All generators are deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crawler;
pub mod restaurant;
pub mod tdocgen;
pub mod zipf;

pub use restaurant::{figure1_versions, RestaurantGuide};
pub use tdocgen::{DocGen, DocGenConfig};
