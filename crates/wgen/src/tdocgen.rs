//! TDocGen-style generic temporal document generator.
//!
//! Produces a document of configurable shape (sections containing items
//! containing small fields) over a Zipf vocabulary, then evolves it with a
//! parameterised update stream — the knobs the operator-cost experiments
//! sweep: items per document, words per field, changes per version, and
//! the update/insert/delete mix.
//!
//! The generator works on XML text (what a crawler would deliver); the
//! database's diff machinery rediscovers the changes, exactly as in the
//! paper's warehouse setting where "we do not necessarily have all the
//! versions" and deltas are computed from retrieved snapshots.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct DocGenConfig {
    /// Number of `<item>` elements initially.
    pub items: usize,
    /// Words per `<text>` field.
    pub words_per_field: usize,
    /// Vocabulary size.
    pub vocabulary: usize,
    /// Zipf skew of the vocabulary.
    pub alpha: f64,
    /// Changes applied per version step.
    pub changes_per_version: usize,
    /// Relative weight of text updates in a step.
    pub w_update: u32,
    /// Relative weight of item inserts.
    pub w_insert: u32,
    /// Relative weight of item deletes.
    pub w_delete: u32,
}

impl Default for DocGenConfig {
    fn default() -> Self {
        DocGenConfig {
            items: 50,
            words_per_field: 8,
            vocabulary: 500,
            alpha: 1.0,
            changes_per_version: 5,
            w_update: 8,
            w_insert: 1,
            w_delete: 1,
        }
    }
}

#[derive(Clone, Debug)]
struct Item {
    id: u64,
    kind: usize,
    words: Vec<usize>,
}

/// The generator: holds the evolving logical document.
pub struct DocGen {
    cfg: DocGenConfig,
    rng: StdRng,
    zipf: Zipf,
    items: Vec<Item>,
    next_id: u64,
}

const KINDS: [&str; 5] = ["article", "notice", "report", "review", "summary"];

impl DocGen {
    /// Creates the generator and its initial document state.
    pub fn new(cfg: DocGenConfig, seed: u64) -> DocGen {
        let mut rng = StdRng::seed_from_u64(seed);
        let zipf = Zipf::new(cfg.vocabulary, cfg.alpha);
        let mut items = Vec::with_capacity(cfg.items);
        for i in 0..cfg.items {
            let words = (0..cfg.words_per_field).map(|_| zipf.sample(&mut rng)).collect();
            items.push(Item { id: i as u64, kind: rng.gen_range(0..KINDS.len()), words });
        }
        let next_id = cfg.items as u64;
        DocGen { cfg, rng, zipf, items, next_id }
    }

    /// The current document as XML.
    pub fn xml(&self) -> String {
        let mut out = String::from("<doc>");
        for it in &self.items {
            out.push_str(&format!("<item id=\"i{}\"><kind>{}</kind><text>", it.id, KINDS[it.kind]));
            for (i, w) in it.words.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(&word(*w));
            }
            out.push_str("</text></item>");
        }
        out.push_str("</doc>");
        out
    }

    /// Applies one version step of changes and returns the new XML.
    pub fn step(&mut self) -> String {
        let total = self.cfg.w_update + self.cfg.w_insert + self.cfg.w_delete;
        for _ in 0..self.cfg.changes_per_version {
            let dice = self.rng.gen_range(0..total);
            if dice < self.cfg.w_update && !self.items.is_empty() {
                // Update a few words of one item.
                let i = self.rng.gen_range(0..self.items.len());
                let n_words = self.items[i].words.len();
                let touch = self.rng.gen_range(1..=n_words.min(3));
                for _ in 0..touch {
                    let w = self.rng.gen_range(0..n_words);
                    self.items[i].words[w] = self.zipf.sample(&mut self.rng);
                }
            } else if dice < self.cfg.w_update + self.cfg.w_insert || self.items.is_empty() {
                let words = (0..self.cfg.words_per_field)
                    .map(|_| self.zipf.sample(&mut self.rng))
                    .collect();
                let pos = self.rng.gen_range(0..=self.items.len());
                let kind = self.rng.gen_range(0..KINDS.len());
                self.items.insert(pos, Item { id: self.next_id, kind, words });
                self.next_id += 1;
            } else {
                let i = self.rng.gen_range(0..self.items.len());
                self.items.remove(i);
            }
        }
        self.xml()
    }

    /// Current item count.
    pub fn item_count(&self) -> usize {
        self.items.len()
    }

    /// A word from the vocabulary by rank (for building queries that hit
    /// long or short posting lists).
    pub fn word_at_rank(rank: usize) -> String {
        word(rank)
    }
}

fn word(rank: usize) -> String {
    format!("w{rank:05}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_document_valid_and_sized() {
        let g = DocGen::new(DocGenConfig::default(), 11);
        let xml = g.xml();
        let t = txdb_xml::parse::parse_document(&xml).unwrap();
        // doc + 50 × (item + kind + ktext + text + ttext) = 1 + 250
        assert_eq!(t.len(), 251);
    }

    #[test]
    fn steps_are_deterministic_and_valid() {
        let mk = || DocGen::new(DocGenConfig::default(), 5);
        let mut a = mk();
        let mut b = mk();
        for _ in 0..10 {
            let xa = a.step();
            assert_eq!(xa, b.step());
            txdb_xml::parse::parse_document(&xa).unwrap();
        }
    }

    #[test]
    fn update_only_config_keeps_count() {
        let cfg = DocGenConfig { w_insert: 0, w_delete: 0, ..Default::default() };
        let mut g = DocGen::new(cfg, 9);
        let before = g.item_count();
        for _ in 0..5 {
            g.step();
        }
        assert_eq!(g.item_count(), before);
    }

    #[test]
    fn churn_config_changes_count() {
        let cfg = DocGenConfig {
            w_update: 0,
            w_insert: 1,
            w_delete: 1,
            changes_per_version: 20,
            ..Default::default()
        };
        let mut g = DocGen::new(cfg, 13);
        let mut seen_sizes = std::collections::HashSet::new();
        for _ in 0..10 {
            g.step();
            seen_sizes.insert(g.item_count());
        }
        assert!(seen_sizes.len() > 1, "sizes fluctuate: {seen_sizes:?}");
    }

    #[test]
    fn vocabulary_skew_visible() {
        let g = DocGen::new(DocGenConfig { items: 200, ..Default::default() }, 3);
        let xml = g.xml();
        let common = xml.matches(&DocGen::word_at_rank(0)).count();
        let rare = xml.matches(&DocGen::word_at_rank(400)).count();
        assert!(common > rare, "zipf head beats tail: {common} vs {rare}");
    }
}
