//! Simulated web-warehouse crawl feed (§3.1, second case).
//!
//! "XML warehouse or other non-synchronized storage of copies of XML
//! documents. […] we in general do not know the time of creation of an XML
//! document, only the time when the document was retrieved from the Web
//! ('crawled'). The documents in the warehouse are not retrieved at the
//! same point in time […] There might have been updates between the
//! versions we have retrieved, i.e., we do not necessarily have all the
//! versions of a particular document."
//!
//! The simulator maintains a set of pages, each evolving by its own
//! (seeded) update process; a crawler visits pages at a configurable
//! cadence with jitter. The produced [`CrawlEvent`] stream has exactly the
//! §3.1 properties: observation times ≠ change times, *missed* versions
//! (page changed twice between visits), unchanged fetches, and deletions
//! observed only at the next visit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use txdb_base::{Duration, Timestamp};

use crate::tdocgen::{DocGen, DocGenConfig};

/// One crawler observation.
#[derive(Debug)]
pub struct CrawlEvent {
    /// Page URL.
    pub url: String,
    /// Crawl (transaction) time — all the warehouse ever knows.
    pub crawled_at: Timestamp,
    /// The observation.
    pub kind: CrawlKind,
}

/// What the crawler saw.
#[derive(Debug)]
pub enum CrawlKind {
    /// The page content at crawl time.
    Content(String),
    /// The page is gone (HTTP 404/410).
    Gone,
}

/// Crawl simulation parameters.
#[derive(Clone, Debug)]
pub struct CrawlConfig {
    /// Number of pages.
    pub pages: usize,
    /// Mean time between *page* changes.
    pub page_change_every: Duration,
    /// Mean time between crawler visits per page.
    pub crawl_every: Duration,
    /// Probability a page dies at any given change point.
    pub death_prob: f64,
    /// Simulation horizon.
    pub horizon: Duration,
    /// Shape of each page's content.
    pub doc: DocGenConfig,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            pages: 10,
            page_change_every: Duration::from_hours(6),
            crawl_every: Duration::from_days(1),
            death_prob: 0.01,
            horizon: Duration::from_days(30),
            doc: DocGenConfig { items: 10, ..Default::default() },
        }
    }
}

/// Runs the simulation, returning the crawl-event stream ordered by crawl
/// time (and per-URL monotone). Also returns, per page, how many *true*
/// versions existed — comparing against the number of observed versions
/// quantifies the §3.1 "missed versions" effect.
pub fn simulate(cfg: &CrawlConfig, start: Timestamp, seed: u64) -> (Vec<CrawlEvent>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let end = start + cfg.horizon;
    let mut events: Vec<CrawlEvent> = Vec::new();
    let mut true_versions = Vec::with_capacity(cfg.pages);

    for p in 0..cfg.pages {
        let url = format!("site{p}.example.org/page");
        let mut gen = DocGen::new(cfg.doc.clone(), seed ^ (p as u64) << 17);
        // Build the page's true change timeline.
        let mut timeline: Vec<(Timestamp, Option<String>)> = vec![(start, Some(gen.xml()))];
        let mut t = start;
        let mut alive = true;
        let mut versions = 1usize;
        while alive {
            t = t + jitter(cfg.page_change_every, &mut rng);
            if t >= end {
                break;
            }
            if rng.gen_bool(cfg.death_prob) {
                timeline.push((t, None));
                alive = false;
            } else {
                timeline.push((t, Some(gen.step())));
                versions += 1;
            }
        }
        true_versions.push(versions);

        // Crawl the timeline.
        let mut visit = start + jitter(cfg.crawl_every, &mut rng);
        let mut last_seen: Option<String> = None;
        let mut reported_gone = false;
        while visit < end {
            // The page state at visit time: the last timeline entry ≤ visit.
            let state = timeline
                .iter()
                .rev()
                .find(|(ts, _)| *ts <= visit)
                .map(|(_, s)| s.clone())
                .unwrap_or(None);
            match state {
                Some(content) => {
                    if last_seen.as_deref() != Some(content.as_str()) {
                        events.push(CrawlEvent {
                            url: url.clone(),
                            crawled_at: visit,
                            kind: CrawlKind::Content(content.clone()),
                        });
                        last_seen = Some(content);
                    }
                    reported_gone = false;
                }
                None => {
                    if !reported_gone && last_seen.is_some() {
                        events.push(CrawlEvent {
                            url: url.clone(),
                            crawled_at: visit,
                            kind: CrawlKind::Gone,
                        });
                        reported_gone = true;
                        last_seen = None;
                    }
                }
            }
            visit = visit + jitter(cfg.crawl_every, &mut rng);
        }
    }
    events.sort_by_key(|e| (e.crawled_at, e.url.clone()));
    (events, true_versions)
}

/// Uniform jitter in `[d/2, 3d/2)` — visits and changes never align.
fn jitter(d: Duration, rng: &mut StdRng) -> Duration {
    let base = d.micros();
    Duration::from_micros(rng.gen_range(base / 2..base + base / 2).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start() -> Timestamp {
        Timestamp::from_date(2001, 1, 1)
    }

    #[test]
    fn produces_ordered_observations() {
        let (events, truth) = simulate(&CrawlConfig::default(), start(), 42);
        assert!(!events.is_empty());
        assert_eq!(truth.len(), 10);
        // Ordered by time.
        assert!(events.windows(2).all(|w| w[0].crawled_at <= w[1].crawled_at));
        // All content parses.
        for e in &events {
            if let CrawlKind::Content(xml) = &e.kind {
                txdb_xml::parse::parse_document(xml).unwrap();
            }
        }
    }

    #[test]
    fn misses_versions_when_crawling_slowly() {
        // Pages change every 6h, crawler comes daily → must miss versions.
        let cfg = CrawlConfig::default();
        let (events, truth) = simulate(&cfg, start(), 7);
        let observed_per_page = |p: usize| {
            let url = format!("site{p}.example.org/page");
            events
                .iter()
                .filter(|e| e.url == url && matches!(e.kind, CrawlKind::Content(_)))
                .count()
        };
        let total_observed: usize = (0..cfg.pages).map(observed_per_page).sum();
        let total_true: usize = truth.iter().sum();
        assert!(
            total_observed < total_true,
            "crawler observed {total_observed} of {total_true} true versions"
        );
        assert!(total_observed > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = CrawlConfig { pages: 3, ..Default::default() };
        let (a, _) = simulate(&cfg, start(), 9);
        let (b, _) = simulate(&cfg, start(), 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.url, y.url);
            assert_eq!(x.crawled_at, y.crawled_at);
        }
    }

    #[test]
    fn deaths_reported_once() {
        let cfg = CrawlConfig {
            pages: 20,
            death_prob: 0.3,
            horizon: Duration::from_days(60),
            ..Default::default()
        };
        let (events, _) = simulate(&cfg, start(), 3);
        let gones = events.iter().filter(|e| matches!(e.kind, CrawlKind::Gone)).count();
        assert!(gones > 0, "with 30% death prob some pages die");
        // Each URL reports Gone at most once (no resurrection in the sim).
        let mut per_url = std::collections::HashMap::new();
        for e in &events {
            if matches!(e.kind, CrawlKind::Gone) {
                *per_url.entry(&e.url).or_insert(0) += 1;
            }
        }
        assert!(per_url.values().all(|&c| c == 1));
    }
}
