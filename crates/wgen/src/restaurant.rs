//! The restaurant guide workload (Figure 1 and scaled variants).
//!
//! [`figure1_versions`] reproduces the paper's Figure 1 exactly: "the
//! restaurant list at guide.com as retrieved on January 1st, January 15th,
//! and January 31st" — Napoli 15; Napoli 15 + Akropolis 13; Napoli 18.
//!
//! [`RestaurantGuide`] scales the same scenario: a guide with `n`
//! restaurants receiving a stream of price updates, openings and closings,
//! deterministic per seed. Used by E2/E3/E6.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use txdb_base::Timestamp;

/// The paper's Figure 1: `(timestamp, xml)` for the three retrievals.
pub fn figure1_versions() -> Vec<(Timestamp, String)> {
    vec![
        (
            Timestamp::from_date(2001, 1, 1),
            "<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>"
                .to_string(),
        ),
        (
            Timestamp::from_date(2001, 1, 15),
            "<guide><restaurant><name>Napoli</name><price>15</price></restaurant>\
             <restaurant><name>Akropolis</name><price>13</price></restaurant></guide>"
                .to_string(),
        ),
        (
            Timestamp::from_date(2001, 1, 31),
            "<guide><restaurant><name>Napoli</name><price>18</price></restaurant></guide>"
                .to_string(),
        ),
    ]
}

/// The canonical document name of the guide.
pub const GUIDE_URL: &str = "guide.com/restaurants";

#[derive(Clone, Debug)]
struct Restaurant {
    name: String,
    price: u32,
    category: &'static str,
    open: bool,
}

const CATEGORIES: [&str; 6] = ["italian", "greek", "french", "sushi", "burger", "vegan"];
const NAME_A: [&str; 10] =
    ["Golden", "Blue", "Old", "Royal", "Little", "Grand", "Silver", "Happy", "Corner", "Garden"];
const NAME_B: [&str; 10] = [
    "Napoli",
    "Akropolis",
    "Bistro",
    "Dragon",
    "Tavern",
    "Kitchen",
    "Palace",
    "House",
    "Cafe",
    "Grill",
];

/// A scalable restaurant-guide update stream.
pub struct RestaurantGuide {
    rng: StdRng,
    restaurants: Vec<Restaurant>,
    /// Probability that a step updates a price (vs opening/closing).
    pub price_update_prob: f64,
}

impl RestaurantGuide {
    /// A guide with `n` restaurants, deterministic for `seed`.
    pub fn new(n: usize, seed: u64) -> RestaurantGuide {
        let mut rng = StdRng::seed_from_u64(seed);
        let restaurants = (0..n)
            .map(|i| Restaurant {
                name: format!(
                    "{} {} {}",
                    NAME_A[i % NAME_A.len()],
                    NAME_B[(i / NAME_A.len()) % NAME_B.len()],
                    i
                ),
                price: rng.gen_range(8..40),
                category: CATEGORIES[i % CATEGORIES.len()],
                open: true,
            })
            .collect();
        RestaurantGuide { rng, restaurants, price_update_prob: 0.8 }
    }

    /// The current guide as XML.
    pub fn xml(&self) -> String {
        let mut out = String::from("<guide>");
        for r in self.restaurants.iter().filter(|r| r.open) {
            out.push_str(&format!(
                "<restaurant category=\"{}\"><name>{}</name><price>{}</price></restaurant>",
                r.category, r.name, r.price
            ));
        }
        out.push_str("</guide>");
        out
    }

    /// Applies `changes` random changes (price updates, closings,
    /// re-openings) and returns the new XML.
    pub fn step(&mut self, changes: usize) -> String {
        for _ in 0..changes {
            let i = self.rng.gen_range(0..self.restaurants.len());
            if self.rng.gen_bool(self.price_update_prob) {
                let delta = self.rng.gen_range(1..5);
                let r = &mut self.restaurants[i];
                if self.rng.gen_bool(0.6) {
                    r.price += delta;
                } else {
                    r.price = r.price.saturating_sub(delta).max(5);
                }
            } else {
                let r = &mut self.restaurants[i];
                r.open = !r.open;
            }
        }
        self.xml()
    }

    /// Number of currently open restaurants.
    pub fn open_count(&self) -> usize {
        self.restaurants.iter().filter(|r| r.open).count()
    }

    /// The name of restaurant `i` (for targeted queries).
    pub fn name_of(&self, i: usize) -> &str {
        &self.restaurants[i].name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape() {
        let vs = figure1_versions();
        assert_eq!(vs.len(), 3);
        assert!(vs[0].1.contains("Napoli") && !vs[0].1.contains("Akropolis"));
        assert!(vs[1].1.contains("Akropolis"));
        assert!(vs[2].1.contains("<price>18</price>"));
        assert!(vs.windows(2).all(|w| w[0].0 < w[1].0));
        // Valid XML.
        for (_, xml) in &vs {
            txdb_xml::parse::parse_document(xml).unwrap();
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = RestaurantGuide::new(20, 7);
        let mut b = RestaurantGuide::new(20, 7);
        assert_eq!(a.xml(), b.xml());
        for _ in 0..5 {
            assert_eq!(a.step(3), b.step(3));
        }
        let mut c = RestaurantGuide::new(20, 8);
        assert_ne!(a.xml(), c.step(0), "different seed differs");
    }

    #[test]
    fn steps_change_content_and_stay_valid() {
        let mut g = RestaurantGuide::new(50, 1);
        let before = g.xml();
        let after = g.step(10);
        assert_ne!(before, after);
        txdb_xml::parse::parse_document(&after).unwrap();
        assert!(g.open_count() <= 50);
        assert!(!g.name_of(0).is_empty());
    }

    #[test]
    fn names_unique() {
        let g = RestaurantGuide::new(100, 3);
        let mut names: Vec<&str> = (0..100).map(|i| g.name_of(i)).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 100);
    }
}
