//! Zipf-distributed sampling for synthetic vocabularies.
//!
//! Word frequencies in text follow a Zipf law; the TDocGen-style generator
//! draws its vocabulary through this sampler so that full-text-index
//! posting lists have realistic skew (a few very long lists, a long tail
//! of short ones).

use rand::Rng;

/// A Zipf(α) sampler over ranks `0..n` (rank 0 most frequent).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler. `alpha` around 1.0 is classic Zipf; `alpha = 0`
    /// degenerates to uniform.
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "zipf needs a non-empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Samples a rank in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Never empty (construction asserts `n > 0`).
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range_and_skewed() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            let k = z.sample(&mut rng);
            assert!(k < 100);
            counts[k] += 1;
        }
        // Rank 0 much more frequent than rank 50.
        assert!(counts[0] > counts[50] * 5, "{} vs {}", counts[0], counts[50]);
        // Everything reachable-ish: at least half the ranks were hit.
        assert!(counts.iter().filter(|&&c| c > 0).count() > 50);
    }

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < *min * 2, "roughly uniform: {counts:?}");
    }

    #[test]
    fn deterministic_for_seed() {
        let z = Zipf::new(50, 1.2);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
