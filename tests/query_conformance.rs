//! Query-language conformance: cross-feature coverage beyond the paper's
//! example queries, plus planner-strategy equivalence — the index-backed
//! path and the reconstruct-and-scan fallback must return identical rows.

use temporal_xml::{Database, QueryExt, Timestamp};

fn ts(n: u64) -> Timestamp {
    Timestamp::from_secs(1_000_000 + n * 3600)
}

/// A small library catalogue with enough structure for every feature.
fn library() -> Database {
    let db = Database::in_memory();
    db.put(
        "lib/catalog",
        r#"<catalog>
             <book lang="en"><title>Dune</title><price>12</price><author>Herbert</author></book>
             <book lang="no"><title>Sult</title><price>9</price><author>Hamsun</author></book>
           </catalog>"#,
        ts(1),
    )
    .unwrap();
    db.put(
        "lib/catalog",
        r#"<catalog>
             <book lang="en"><title>Dune</title><price>15</price><author>Herbert</author></book>
             <book lang="no"><title>Sult</title><price>9</price><author>Hamsun</author></book>
             <book lang="en"><title>Neuromancer</title><price>11</price><author>Gibson</author></book>
           </catalog>"#,
        ts(10),
    )
    .unwrap();
    db.put(
        "lib/journal",
        r#"<journal><issue n="1"><article>On Dune and deserts</article></issue></journal>"#,
        ts(5),
    )
    .unwrap();
    db
}

fn run(db: &Database, q: &str) -> temporal_xml::QueryResult {
    db.query(q).at(ts(100)).run().unwrap()
}

#[test]
fn index_and_tree_scan_strategies_agree() {
    let db = library();
    // Same logical query; the first compiles to an index pattern, the
    // second's wildcard step forces the tree-scan fallback.
    let a = run(&db, r#"SELECT R/title FROM doc("lib/catalog")//book R"#);
    let b = run(&db, r#"SELECT R/title FROM doc("lib/catalog")/catalog/* R"#);
    assert_eq!(a.to_xml(), b.to_xml());
    assert_eq!(a.len(), 3);
    // And with a snapshot.
    let a =
        run(&db, &format!(r#"SELECT R/title FROM doc("lib/catalog")[{}]//book R"#, ts(2).micros()));
    let b = run(
        &db,
        &format!(r#"SELECT R/title FROM doc("lib/catalog")[{}]/catalog/* R"#, ts(2).micros()),
    );
    assert_eq!(a.to_xml(), b.to_xml());
    assert_eq!(a.len(), 2);
    // And over EVERY.
    let a = run(&db, r#"SELECT R/title FROM doc("lib/catalog")[EVERY]//book R"#);
    let b = run(&db, r#"SELECT R/title FROM doc("lib/catalog")[EVERY]/catalog/* R"#);
    assert_eq!(a.to_xml(), b.to_xml());
    assert_eq!(a.len(), 5, "2 books in v0 + 3 in v1");
}

#[test]
fn collection_queries_cross_documents() {
    let db = library();
    let r = run(&db, r#"SELECT COUNT(*) FROM doc("*")//title R"#);
    assert_eq!(r.rows[0][0].as_text(), "3");
    // Words hit both docs.
    let r = run(&db, r#"SELECT R FROM doc("*")//article R WHERE R CONTAINS "dune""#);
    assert_eq!(r.len(), 1);
}

#[test]
fn boolean_connectives() {
    let db = library();
    let r = run(
        &db,
        r#"SELECT R/title FROM doc("lib/catalog")//book R
           WHERE R/price > 10 AND NOT R/title = "Dune""#,
    );
    assert_eq!(r.to_xml(), "<results><result><title>Neuromancer</title></result></results>");
    let r = run(
        &db,
        r#"SELECT R/title FROM doc("lib/catalog")//book R
           WHERE R/title = "Sult" OR R/title = "Dune""#,
    );
    assert_eq!(r.len(), 2);
}

#[test]
fn value_predicates_on_subelements() {
    let db = library();
    let r = run(&db, r#"SELECT R/price FROM doc("lib/catalog")//book R WHERE R/author = "Gibson""#);
    assert_eq!(r.to_xml(), "<results><result><price>11</price></result></results>");
}

#[test]
fn document_time_queries_via_content() {
    // §3.1's third case: "many documents include a timestamp in the
    // document itself … documents can also be indexed and queried based on
    // this document time." Document time is ordinary content here, and
    // date-valued text compares against date literals.
    let db = Database::in_memory();
    db.put(
        "news",
        r#"<feed>
             <story><published>2001-09-08</published><h>Early story</h></story>
             <story><published>2001-09-10</published><h>Later story</h></story>
           </feed>"#,
        ts(1),
    )
    .unwrap();
    let r = run(&db, r#"SELECT R/h FROM doc("news")//story R WHERE R/published >= 10/09/2001"#);
    assert_eq!(r.to_xml(), "<results><result><h>Later story</h></result></results>");
    let r = run(&db, r#"SELECT COUNT(R) FROM doc("news")//story R WHERE R/published < 10/09/2001"#);
    assert_eq!(r.rows[0][0].as_text(), "1");
}

#[test]
fn distinct_deduplicates() {
    let db = library();
    let r = run(&db, r#"SELECT DISTINCT R/author FROM doc("lib/catalog")[EVERY]//book R"#);
    assert_eq!(r.len(), 3, "Herbert, Hamsun, Gibson — once each: {}", r.to_xml());
}

#[test]
fn sum_and_count_aggregates() {
    let db = library();
    let r = run(&db, r#"SELECT SUM(R/price), COUNT(R) FROM doc("lib/catalog")//book R"#);
    assert_eq!(r.rows[0][0].as_text(), "35");
    assert_eq!(r.rows[0][1].as_text(), "3");
}

#[test]
fn text_step_in_select_path() {
    let db = library();
    let r = run(&db, r#"SELECT R/title/text() FROM doc("lib/catalog")//book R WHERE R/price < 10"#);
    assert_eq!(r.to_xml(), "<results><result>Sult</result></results>");
}

#[test]
fn numeric_vs_string_comparison() {
    let db = Database::in_memory();
    db.put("d", "<l><v>9</v><v>11</v><v>abc</v></l>", ts(1)).unwrap();
    // Numeric comparison: 9 < 11 (string compare would say "11" < "9").
    let r = run(&db, r#"SELECT R FROM doc("d")//v R WHERE R < 10"#);
    assert_eq!(r.to_xml(), "<results><result><v>9</v></result></results>");
    // String comparison when not numeric.
    let r = run(&db, r#"SELECT R FROM doc("d")//v R WHERE R = "abc""#);
    assert_eq!(r.len(), 1);
}

#[test]
fn null_semantics_of_version_functions() {
    let db = library();
    // PREVIOUS of first version is Null → empty cell, row survives.
    let r = run(
        &db,
        &format!(
            r#"SELECT PREVIOUS(R) FROM doc("lib/catalog")[{}]//book R WHERE R/title = "Dune""#,
            ts(2).micros()
        ),
    );
    assert_eq!(r.to_xml(), "<results><result></result></results>");
    // NEXT of the same binding is the v1 book.
    let r = run(
        &db,
        &format!(
            r#"SELECT NEXT(R)/price FROM doc("lib/catalog")[{}]//book R WHERE R/title = "Dune""#,
            ts(2).micros()
        ),
    );
    assert_eq!(r.to_xml(), "<results><result><price>15</price></result></results>");
}

#[test]
fn similarity_function_and_operator() {
    let db = library();
    // SIMILARITY as a numeric function.
    let r = run(
        &db,
        r#"SELECT SIMILARITY(R1, R2) FROM doc("lib/catalog")//book R1,
           doc("lib/catalog")//book R2 WHERE R1/title = "Dune" AND R2/title = "Dune""#,
    );
    assert_eq!(r.rows[0][0].as_text(), "1");
    // `~` self-join finds at least the identical pairs.
    let r = run(
        &db,
        r#"SELECT R1/title FROM doc("lib/catalog")//book R1,
           doc("lib/catalog")//book R2 WHERE R1 ~ R2 AND R1 == R2"#,
    );
    assert_eq!(r.len(), 3);
}

#[test]
fn three_way_join() {
    let db = library();
    let r = run(
        &db,
        r#"SELECT R1/title FROM doc("lib/catalog")//book R1,
              doc("lib/catalog")//book R2, doc("lib/journal")//article A
           WHERE R1 == R2 AND A CONTAINS R1/title"#,
    );
    assert_eq!(r.to_xml(), "<results><result><title>Dune</title></result></results>");
}

#[test]
fn deep_descendant_paths() {
    let db = Database::in_memory();
    db.put("d", "<a><b><c><d>deep</d></c></b><c><d>shallow</d></c></a>", ts(1)).unwrap();
    let r = run(&db, r#"SELECT R FROM doc("d")/a/b//d R"#);
    assert_eq!(r.to_xml(), "<results><result><d>deep</d></result></results>");
    let r = run(&db, r#"SELECT R FROM doc("d")//c/d R"#);
    assert_eq!(r.len(), 2);
}

#[test]
fn error_paths_surface_cleanly() {
    let db = library();
    let cases = [
        r#"SELECT R FROM doc("lib/catalog")//book R WHERE BOGUS(R) = 1"#,
        r#"SELECT R FROM"#,
        r#"SELECT X FROM doc("lib/catalog")//book R"#,
        r#"SELECT COUNT(R), R/title FROM doc("lib/catalog")//book R"#,
    ];
    for q in cases {
        assert!(db.query(q).at(ts(100)).run().is_err(), "{q}");
    }
}

#[test]
fn create_and_delete_time_in_where_and_select() {
    let db = library();
    db.delete("lib/journal", ts(50)).unwrap();
    let r = run(
        &db,
        &format!(r#"SELECT DELETETIME(R) FROM doc("lib/journal")[{}]//article R"#, ts(6).micros()),
    );
    assert_eq!(r.rows[0][0].as_text(), ts(50).to_string());
    // Books created in v1 only.
    let r = run(
        &db,
        &format!(
            r#"SELECT R/title FROM doc("lib/catalog")[EVERY]//book R
               WHERE CREATETIME(R) >= {}"#,
            ts(10).micros()
        ),
    );
    assert_eq!(r.to_xml(), "<results><result><title>Neuromancer</title></result></results>");
}

#[test]
fn explain_rows_match_streamed_operator_counts() {
    // The EXPLAIN ANALYZE tree is read off the live operator tree, so
    // each node's `rows` must equal the number of rows that operator
    // actually emitted — which the streaming cursor lets us observe
    // directly: the root's count is the rows the stream yields, the join
    // node's count is `rows_scanned` of the same run.
    let db = library();
    let q = r#"SELECT R/title FROM doc("lib/catalog")[EVERY]//book R WHERE R/price < 12"#;
    let explained = db.query(q).at(ts(100)).explain().run().unwrap();
    let tree = explained.explain.as_ref().unwrap();

    let mut stream = db.query(q).at(ts(100)).stream().unwrap();
    let streamed: Vec<_> = (&mut stream).collect::<Result<Vec<_>, _>>().unwrap();
    let streamed_stats = stream.stats();

    assert_eq!(tree.rows, streamed.len(), "root rows == rows the stream yields");
    assert_eq!(tree.rows, explained.stats.rows_output);
    let filter = &tree.children[0];
    assert_eq!(filter.label, "filter");
    let join = &filter.children[0];
    assert!(join.label.starts_with("nested-loop join"), "{}", join.label);
    assert_eq!(join.rows, streamed_stats.rows_scanned, "join rows == streamed rows_scanned");
    assert_eq!(join.rows, explained.stats.rows_scanned);
    // The scan leaf feeds the join one row per binding: with a single
    // source the counts are identical.
    let scan = &join.children[0];
    assert_eq!(scan.rows, join.rows, "single-source join passes scan rows through");
    // And the two executions agree on the §6 cost counters.
    assert_eq!(streamed_stats.rows_output, streamed.len());
}

#[test]
fn streaming_limit_early_exits_and_bounds_memory() {
    // A many-version document: LIMIT 1 must stop the scan after the
    // first match, and the stream's buffered-row high-water mark must
    // not grow with the result size.
    let db = Database::in_memory();
    for v in 0..40u64 {
        let xml = format!(
            "<log>{}</log>",
            (0..5).map(|k| format!("<e><n>v{v}e{k}</n></e>")).collect::<String>()
        );
        db.put("big/log", &xml, ts(v)).unwrap();
    }
    let q = r#"SELECT R/n FROM doc("big/log")[EVERY]//e R"#;

    // Full streamed drain: 40 versions × 5 elements.
    let mut full = db.query(q).at(ts(1000)).stream().unwrap();
    let all: Vec<_> = (&mut full).collect::<Result<Vec<_>, _>>().unwrap();
    assert_eq!(all.len(), 200);
    let full_peak = full.peak_rows_buffered();

    // LIMIT 1: one row out, scan work cut short.
    let mut one = db.query(q).at(ts(1000)).limit(1).stream().unwrap();
    let first: Vec<_> = (&mut one).collect::<Result<Vec<_>, _>>().unwrap();
    assert_eq!(first.len(), 1);
    assert_eq!(first[0], all[0], "limit yields the same first row");
    let one_stats = one.stats();
    assert!(
        one_stats.rows_scanned < 200,
        "LIMIT 1 must not scan the full expansion: {one_stats:?}"
    );
    assert!(
        one_stats.reconstructions <= 1,
        "LIMIT 1 reconstructs at most the version it returns: {one_stats:?}"
    );
    // The bounded-memory claim: the peak is dominated by per-document
    // candidate state, not by the 200-row result.
    assert!(full_peak < all.len(), "peak {full_peak} must stay below the result size");
    assert!(one.peak_rows_buffered() <= full_peak);
}
