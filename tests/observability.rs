//! End-to-end observability: a real persistent workload must populate the
//! unified metrics registry — WAL fsync latency, buffer-pool hit ratio,
//! reconstruction delta counts, per-mode FTI lookups — and the optional
//! JSON-lines event log must receive well-formed events.

use std::sync::Arc;

use temporal_xml::base::obs::Registry;
use temporal_xml::{DbOptions, Interval, QueryExt, Timestamp};

fn jan(d: u32) -> Timestamp {
    Timestamp::from_date(2001, 1, d)
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("txdb-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn workload_populates_registry_and_event_log() {
    let dir = tmpdir("workload");
    let events = dir.join("events.jsonl");
    let reg = Arc::new(Registry::new());
    {
        let db = DbOptions::at(dir.join("db"))
            .snapshot_every(4)
            .wal_sync(true)
            .event_log(&events)
            .metrics(reg.clone())
            .open()
            .unwrap();
        // A version chain long enough to cross a snapshot boundary and
        // force delta applications on reconstruction.
        for v in 0..10u32 {
            let xml = format!(
                "<guide><restaurant><name>Napoli</name><price>{}</price></restaurant></guide>",
                10 + v
            );
            db.put("guide.com/restaurants", &xml, jan(1 + v)).unwrap();
        }
        // Historical reconstructions (deltas applied), a snapshot query
        // (TPatternScan → fti.lookup_t) and a history query
        // (TPatternScanAll → fti.lookup_h).
        let doc = db.store().doc_id("guide.com/restaurants").unwrap().unwrap();
        for v in 0..10u32 {
            db.store().version_tree(doc, temporal_xml::VersionId(v)).unwrap();
        }
        let r = db
            .query(r#"SELECT COUNT(R) FROM doc("*")[05/01/2001]//restaurant R"#)
            .at(jan(20))
            .run()
            .unwrap();
        assert_eq!(r.len(), 1);
        let r = db
            .query(r#"SELECT TIME(R) FROM doc("*")[EVERY]//restaurant R"#)
            .at(jan(20))
            .run()
            .unwrap();
        assert_eq!(r.len(), 10);
        let _ = db.doc_history(doc, Interval::ALL).unwrap();
        db.store().update_derived_metrics();
        db.close().unwrap();
    }

    let snap = reg.snapshot();
    // WAL: every synced append recorded an fsync latency sample.
    let fsync = snap.histogram("wal.fsync_us").expect("wal.fsync_us histogram");
    assert!(fsync.count > 0, "fsync histogram empty: {fsync:?}");
    assert!(fsync.max >= fsync.p50, "{fsync:?}");
    assert!(snap.counter("wal.appends").unwrap_or(0) > 0);
    // Buffer pool: traffic happened and the derived hit ratio is sane.
    assert!(snap.counter("buffer.gets").unwrap_or(0) > 0);
    let ratio = snap.gauge("buffer.hit_ratio_bp").expect("buffer.hit_ratio_bp gauge");
    assert!(ratio <= 10_000, "hit ratio {ratio} out of range");
    // Reconstruction: the historical reads applied completed deltas.
    assert!(snap.counter("reconstruct.calls").unwrap_or(0) > 0);
    assert!(
        snap.counter("reconstruct.deltas_applied").unwrap_or(0) > 0,
        "no deltas applied: {}",
        snap.to_text()
    );
    assert!(snap.counter("reconstruct.snapshot_seeds").unwrap_or(0) > 0);
    // FTI: the snapshot query used lookup_t, the history query lookup_h.
    assert!(snap.counter("fti.lookup_t").unwrap_or(0) > 0, "{}", snap.to_text());
    assert!(snap.counter("fti.lookup_h").unwrap_or(0) > 0, "{}", snap.to_text());
    // Query layer folded its totals in.
    assert!(snap.counter("query.runs").unwrap_or(0) >= 2);
    assert!(snap.histogram("query.run_us").map(|h| h.count).unwrap_or(0) >= 2);
    // Checkpoint spans were recorded (put() checkpoints via close()).
    assert!(snap.histogram("checkpoint.write_us").map(|h| h.count).unwrap_or(0) > 0);

    // The event log exists and every line is a well-formed JSON object
    // with an "event" key.
    let log = std::fs::read_to_string(&events).unwrap();
    for line in log.lines() {
        assert!(line.starts_with("{\"event\":\""), "bad event line: {line}");
        assert!(line.ends_with('}'), "bad event line: {line}");
        assert_eq!(line.matches('{').count(), line.matches('}').count(), "{line}");
    }

    // Re-open with the same registry: checkpoint.load_us is recorded and
    // the open does NOT fall back to a full replay.
    {
        let db = DbOptions::at(dir.join("db")).metrics(reg.clone()).open().unwrap();
        let snap = reg.snapshot();
        assert!(snap.histogram("checkpoint.load_us").map(|h| h.count).unwrap_or(0) > 0);
        assert_eq!(snap.counter("recovery.index_fallback").unwrap_or(0), 0, "clean open fell back");
        drop(db);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explain_analyze_end_to_end() {
    let dir = tmpdir("explain");
    let db = DbOptions::at(dir.join("db")).snapshot_every(4).open().unwrap();
    for v in 0..6u32 {
        let xml = format!("<g><r><n>Napoli</n><p>{}</p></r></g>", 10 + v);
        db.put("guide", &xml, jan(1 + v)).unwrap();
    }
    let r = db
        .query(r#"SELECT TIME(R), R/p FROM doc("guide")[EVERY]//r R WHERE R/n = "Napoli""#)
        .at(jan(20))
        .explain()
        .run()
        .unwrap();
    assert_eq!(r.len(), 6);
    let tree = r.explain.expect("explain tree");
    // Every node carries a timing and rows; counters partition the totals.
    assert_eq!(tree.counter_total("reconstructions"), r.stats.reconstructions as u64);
    assert_eq!(tree.counter_total("deltas_applied"), r.stats.deltas_applied as u64);
    let rendered = tree.render();
    assert!(rendered.contains("TPatternScanAll"), "{rendered}");
    assert!(rendered.lines().all(|l| l.contains("time=")), "{rendered}");
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
