//! Concurrency: shared-handle readers, group-commit writers, snapshot
//! pins racing vacuum.
//!
//! The engine's contract (DESIGN.md §10): one `Database` handle is
//! `Send + Sync`; readers run in parallel and see immutable committed
//! versions, so a query anchored `.at(ts)` returns byte-identical results
//! no matter how many threads ask concurrently; committers serialize on
//! the store's writer lock but share fsyncs through the WAL group commit;
//! and a snapshot pin fences vacuum's purge horizon below the pinned
//! timestamp for as long as it lives.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use temporal_xml::storage::repo::VersionKind;
use temporal_xml::storage::{DocumentStore, SnapshotPin, SnapshotRegistry};
use temporal_xml::xml::serialize::to_string;
use temporal_xml::{Database, DbOptions, QueryExt, QueryRequest, Timestamp, VersionId};

fn ts(n: u64) -> Timestamp {
    Timestamp::from_secs(1_000_000 + n)
}

/// The whole read/query surface must be shareable across threads — a
/// compile-time fact, asserted here so a regression (an `Rc`, a non-`Sync`
/// cell) fails the build, not a deployment.
#[test]
fn database_handles_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
    assert_send_sync::<DocumentStore>();
    assert_send_sync::<temporal_xml::base::obs::Registry>();
    assert_send_sync::<SnapshotRegistry>();
    assert_send_sync::<SnapshotPin>();
    // The stream-producing handle is shareable; the `RowStream` cursor it
    // opens is deliberately single-threaded (operator trees use `Rc`),
    // which is fine: each thread opens its own cursor from the shared db.
    assert_send_sync::<QueryRequest<'static>>();
}

/// N threads querying random historical timestamps must each see exactly
/// what a serial replay sees — byte-identical result documents.
#[test]
fn concurrent_readers_match_serial_replay() {
    let db = Database::in_memory();
    for i in 0..40u64 {
        db.put("d", &format!("<log><n>{i}</n><w>alpha{i}</w></log>"), ts(i * 10)).unwrap();
    }
    // Snapshot queries (`doc("d")[t]`) at probe times straddling every
    // version boundary (just before, at, and between commits).
    let query_at = |p: u64| format!(r#"SELECT R/n FROM doc("d")[{}]//log R"#, ts(p).micros());
    let probes: Vec<u64> = (0..=80).map(|k| k * 5 + 3).collect();
    let expected: Vec<String> =
        probes.iter().map(|&p| db.query(query_at(p)).run().unwrap().to_xml()).collect();
    std::thread::scope(|s| {
        for t in 0..8usize {
            let db = &db;
            let probes = &probes;
            let expected = &expected;
            let query_at = &query_at;
            s.spawn(move || {
                // Each thread walks the probes in a different order, so
                // at any instant the 8 threads hit 8 different snapshots.
                for k in 0..probes.len() {
                    let i = (k * 7 + t * 13) % probes.len();
                    let got = db.query(query_at(probes[i])).run().unwrap().to_xml();
                    assert_eq!(got, expected[i], "thread {t} diverged at probe {}", probes[i]);
                }
            });
        }
    });
}

/// The pin contract, deterministically: a live pin clamps vacuum's
/// horizon to the pinned timestamp (the stats report the clamp), the
/// pinned version stays reconstructible, and dropping the pin releases
/// the fence.
#[test]
fn pinned_snapshot_fences_vacuum() {
    let db = Database::in_memory();
    for i in 0..10u64 {
        db.put("d", &format!("<a><v>{i}</v></a>"), ts(i)).unwrap();
    }
    let doc = db.store().doc_id("d").unwrap().unwrap();
    let pinned_at = ts(2);
    let pin = db.pin_snapshot(pinned_at);
    assert_eq!(db.store().snapshots().active(), 1);
    assert_eq!(db.metrics().snapshot().gauge("db.active_snapshots"), Some(1));

    let stats = db.vacuum("d", Timestamp::FOREVER).unwrap().unwrap();
    assert_eq!(stats.horizon, pinned_at, "horizon must clamp to the oldest pin");
    // v2 is valid over [ts(2), ts(3)) — at the pinned time — and survives,
    // as does everything the pinned reader can reach. (v1 survives too:
    // purge is strict, `end < horizon`, so a version ending exactly at
    // the pin is conservatively kept.)
    for v in 1..10u32 {
        let tree = db.store().version_tree(doc, VersionId(v)).unwrap();
        assert_eq!(to_string(&tree), format!("<a><v>{v}</v></a>"));
    }
    // Only history invisible from the pin onward was purged.
    let entries = db.store().versions(doc).unwrap();
    assert_eq!(entries[0].kind, VersionKind::Purged);
    assert!(entries[1..].iter().all(|e| e.kind == VersionKind::Content));

    drop(pin);
    assert_eq!(db.store().snapshots().active(), 0);
    let stats = db.vacuum("d", Timestamp::FOREVER).unwrap().unwrap();
    assert_eq!(stats.horizon, Timestamp::FOREVER, "no pins left: nothing clamps");
    let entries = db.store().versions(doc).unwrap();
    assert!(entries[..9].iter().all(|e| e.kind == VersionKind::Purged));
    assert_eq!(entries[9].kind, VersionKind::Content, "current always survives");
}

/// A held query stream keeps its pin alive: rows pulled *after* a vacuum
/// that would have purged the queried snapshot still come back correct.
#[test]
fn open_stream_fences_vacuum_until_dropped() {
    let db = Database::in_memory();
    for i in 0..6u64 {
        db.put("d", &format!("<log><n>{i}</n></log>"), ts(i)).unwrap();
    }
    let query = format!(r#"SELECT R/n FROM doc("d")[{}]//log R"#, ts(1).micros());
    let mut stream = db.query(&query).at(ts(5)).stream().unwrap();
    assert_eq!(db.store().snapshots().active(), 1, "open cursor holds a pin");
    // The pin sits at the plan's *oldest* touchable time — the snapshot
    // qualifier ts(1), not the NOW anchor ts(5).
    let stats = db.vacuum("d", Timestamp::FOREVER).unwrap().unwrap();
    assert_eq!(stats.horizon, ts(1), "cursor's pin clamps the purge");
    let row = stream.next().unwrap().unwrap();
    assert_eq!(row[0].as_text(), "<n>1</n>", "snapshot at ts(1) still intact");
    drop(stream);
    assert_eq!(db.store().snapshots().active(), 0, "drop releases the pin");
}

/// Stress: one writer, one vacuum loop and four pinned readers race on a
/// single hot document. Readers pin a timestamp and reconstruct; a
/// reconstruction may lose the pin-vs-purge race (the vacuum clamped
/// before the pin existed) and find the version gone — that surfaces as a
/// structured error, never a wrong tree. Every successful read must be
/// byte-exact.
#[test]
fn writers_readers_and_vacuum_race_safely() {
    const VERSIONS: u64 = 150;
    let db = Arc::new(DbOptions::new().snapshot_every(4).open().unwrap());
    db.put("hot", "<a><v>0</v></a>", ts(0)).unwrap();
    let stop = AtomicBool::new(false);
    let good_reads = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let db_w = db.clone();
        let stop_ref = &stop;
        s.spawn(move || {
            for i in 1..=VERSIONS {
                db_w.put("hot", &format!("<a><v>{i}</v></a>"), ts(i)).unwrap();
            }
            stop_ref.store(true, Ordering::Release);
        });
        let db_v = db.clone();
        s.spawn(move || {
            while !stop_ref.load(Ordering::Acquire) {
                // Unbounded horizon: only reader pins (and the always-
                // surviving current version) hold history back.
                db_v.vacuum("hot", Timestamp::FOREVER).unwrap();
                std::thread::yield_now();
            }
        });
        for r in 0..4usize {
            let db = db.clone();
            let good = &good_reads;
            s.spawn(move || {
                let doc = db.store().doc_id("hot").unwrap().unwrap();
                let mut k = r;
                while !stop_ref.load(Ordering::Acquire) {
                    let entries = db.store().versions(doc).unwrap();
                    let live: Vec<_> =
                        entries.iter().filter(|e| e.kind == VersionKind::Content).collect();
                    let e = live[k % live.len()];
                    k = k.wrapping_add(7);
                    let _pin = db.pin_snapshot(e.ts);
                    match db.store().version_tree(doc, e.version) {
                        // Under the pin the reconstruction is atomic (one
                        // reader-lock section): success must be exact.
                        Ok(tree) => {
                            assert_eq!(to_string(&tree), format!("<a><v>{}</v></a>", e.version.0));
                            good.fetch_add(1, Ordering::Relaxed);
                        }
                        // The vacuum clamped its horizon before this pin
                        // existed and purged the version first: a clean,
                        // detectable miss.
                        Err(temporal_xml::base::Error::NoSuchVersion(..)) => {}
                        Err(e) => panic!("reader hit unexpected error: {e}"),
                    }
                }
            });
        }
    });
    assert!(
        good_reads.load(Ordering::Relaxed) > 0,
        "stress must complete at least one pinned read"
    );
    // Quiesced: every surviving version reconstructs.
    let doc = db.store().doc_id("hot").unwrap().unwrap();
    for e in db.store().versions(doc).unwrap() {
        if e.kind == VersionKind::Content {
            let tree = db.store().version_tree(doc, e.version).unwrap();
            assert_eq!(to_string(&tree), format!("<a><v>{}</v></a>", e.version.0));
        }
    }
}

/// Concurrent committers on a durable (wal_sync) store: all commits land,
/// recovery agrees, and the group-commit histogram proves fsyncs were
/// shared (durable-advance per fsync sums to the commit count).
#[test]
fn concurrent_committers_share_fsyncs_durably() {
    const THREADS: u64 = 8;
    const PUTS: u64 = 10;
    let dir = std::env::temp_dir().join(format!("txdb-conc-commit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = DbOptions::at(&dir).wal_sync(true);
    {
        let db = opts.clone().open().unwrap();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let db = &db;
                s.spawn(move || {
                    for i in 0..PUTS {
                        db.put(&format!("doc-{t}"), &format!("<a><v>{i}</v></a>"), ts(i + 1))
                            .unwrap();
                    }
                });
            }
        });
        let snap = db.metrics().snapshot();
        let batches = snap.histogram("wal.group_commit.batch_size").expect("histogram registered");
        assert_eq!(batches.sum, THREADS * PUTS, "every commit observed exactly one fsync barrier");
        assert!(batches.count >= 1);
        // No close(): recovery must replay the durable WAL.
    }
    let db = opts.open().unwrap();
    assert!(db.recovery_report().salvage.is_none());
    for t in 0..THREADS {
        let doc = db.store().doc_id(&format!("doc-{t}")).unwrap().unwrap();
        assert_eq!(db.store().versions(doc).unwrap().len(), PUTS as usize);
        let tree = db.store().current_tree(doc).unwrap();
        assert_eq!(to_string(&tree), format!("<a><v>{}</v></a>", PUTS - 1));
    }
    db.close().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
