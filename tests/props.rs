//! Property-based tests over the core invariants (proptest).
//!
//! * parse ∘ serialize = id on arbitrary trees;
//! * the binary codec round-trips trees exactly (including identity);
//! * diff-then-apply-forward reproduces the target; apply-backward
//!   restores the source; the XML delta encoding round-trips;
//! * the temporal FTI agrees with a scan of every reconstructed snapshot;
//! * interval algebra laws.

use proptest::prelude::*;
use temporal_xml::delta::diff::forest_identical;
use temporal_xml::delta::{delta_from_xml, delta_to_xml, diff_trees};
use temporal_xml::index::fti::OccKind;
use temporal_xml::index::maint::element_signature;
use temporal_xml::xml::codec::{decode_tree, encode_tree};
use temporal_xml::xml::parse::parse_document;
use temporal_xml::xml::serialize::to_string;
use temporal_xml::xml::tree::{NodeId, Tree};
use temporal_xml::{Database, Interval, Timestamp, VersionId, Xid};

// ---------------------------------------------------------------- trees

/// Strategy: a small element name.
fn name_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "b", "item", "name", "price", "x1"]).prop_map(str::to_string)
}

/// Strategy: short text without XML-hostile whitespace-only content.
fn text_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["red", "blue", "15", "18 kr", "hello world", "zz"])
        .prop_map(str::to_string)
}

/// A recursive tree description that we turn into a real `Tree`.
#[derive(Clone, Debug)]
enum Spec {
    Text(String),
    Elem { name: String, attrs: Vec<(String, String)>, children: Vec<Spec> },
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    let leaf = prop_oneof![
        text_strategy().prop_map(Spec::Text),
        (name_strategy(), prop::collection::vec((Just("k".to_string()), text_strategy()), 0..2))
            .prop_map(|(name, attrs)| Spec::Elem { name, attrs, children: vec![] }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            prop::collection::vec((Just("k".to_string()), text_strategy()), 0..2),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| Spec::Elem { name, attrs, children })
    })
}

fn build(spec: &Spec, tree: &mut Tree, parent: Option<NodeId>) {
    match spec {
        Spec::Text(t) => {
            // Text nodes only under elements; also avoid adjacent text
            // nodes (serialization would merge them).
            if let Some(p) = parent {
                let last_is_text = tree
                    .node(p)
                    .children()
                    .last()
                    .map(|&c| tree.node(c).text().is_some())
                    .unwrap_or(false);
                if !last_is_text {
                    let id = tree.new_text(t.clone());
                    tree.append_child(p, id);
                }
            }
        }
        Spec::Elem { name, attrs, children } => {
            let id = tree.new_element(name.clone());
            for (k, v) in attrs {
                tree.set_attr(id, k.clone(), v.clone());
            }
            match parent {
                Some(p) => tree.append_child(p, id),
                None => tree.push_root(id),
            }
            for c in children {
                build(c, tree, Some(id));
            }
        }
    }
}

/// Builds a single-rooted tree from a spec (wrapping in `<root>`), with
/// XIDs assigned in document order.
fn tree_from(spec: &Spec) -> Tree {
    let mut t = Tree::new();
    let root = t.new_element("root");
    t.push_root(root);
    build(spec, &mut t, Some(root));
    let ids: Vec<NodeId> = t.iter().collect();
    for (i, id) in ids.iter().enumerate() {
        t.node_mut(*id).xid = Xid(i as u64 + 1);
        t.node_mut(*id).ts = Timestamp::from_secs(1);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn serialize_parse_roundtrip(spec in spec_strategy()) {
        let t = tree_from(&spec);
        let text = to_string(&t);
        let back = parse_document(&text).unwrap();
        prop_assert_eq!(to_string(&back), text);
    }

    #[test]
    fn codec_roundtrip_identical(spec in spec_strategy()) {
        let t = tree_from(&spec);
        let back = decode_tree(&encode_tree(&t)).unwrap();
        prop_assert!(forest_identical(&t, &back));
    }

    #[test]
    fn diff_apply_roundtrip(old_spec in spec_strategy(), new_spec in spec_strategy()) {
        let old = tree_from(&old_spec);
        let mut new = tree_from(&new_spec);
        // New tree arrives without identity, like a fresh crawl.
        let ids: Vec<NodeId> = new.iter().collect();
        for id in ids {
            new.node_mut(id).xid = Xid::NONE;
            new.node_mut(id).ts = Timestamp::ZERO;
        }
        let mut next = Xid(10_000);
        let res = diff_trees(
            &old,
            &mut new,
            &mut next,
            VersionId(0),
            Timestamp::from_secs(1),
            Timestamp::from_secs(2),
        )
        .unwrap();
        // Forward replay reproduces the new tree exactly.
        let mut fwd = old.clone();
        res.delta.apply_forward(&mut fwd).unwrap();
        prop_assert!(forest_identical(&fwd, &new));
        // Backward replay restores the old tree exactly.
        res.delta.apply_backward(&mut fwd).unwrap();
        prop_assert!(forest_identical(&fwd, &old));
    }

    #[test]
    fn delta_xml_roundtrip(old_spec in spec_strategy(), new_spec in spec_strategy()) {
        let old = tree_from(&old_spec);
        let mut new = tree_from(&new_spec);
        let ids: Vec<NodeId> = new.iter().collect();
        for id in ids {
            new.node_mut(id).xid = Xid::NONE;
        }
        let mut next = Xid(10_000);
        let res = diff_trees(
            &old, &mut new, &mut next,
            VersionId(0), Timestamp::from_secs(1), Timestamp::from_secs(2),
        ).unwrap();
        // Encode to XML text and back; the decoded delta must still apply.
        let text = to_string(&delta_to_xml(&res.delta));
        let reparsed = temporal_xml::xml::parse::parse_with(
            &text,
            temporal_xml::xml::parse::ParseOptions { keep_whitespace: true, allow_forest: true },
        ).unwrap();
        let decoded = delta_from_xml(&reparsed).unwrap();
        let mut fwd = old.clone();
        decoded.apply_forward(&mut fwd).unwrap();
        prop_assert!(forest_identical(&fwd, &new));
    }

    #[test]
    fn interval_laws(a in 0u64..100, b in 0u64..100, c in 0u64..100, d in 0u64..100) {
        let i1 = Interval::new(Timestamp::from_secs(a.min(b)), Timestamp::from_secs(a.max(b)));
        let i2 = Interval::new(Timestamp::from_secs(c.min(d)), Timestamp::from_secs(c.max(d)));
        // Overlap is symmetric.
        prop_assert_eq!(i1.overlaps(i2), i2.overlaps(i1));
        // Intersection is contained in both.
        let inter = i1.intersect(i2);
        if !inter.is_empty() {
            prop_assert!(i1.covers(inter));
            prop_assert!(i2.covers(inter));
            prop_assert!(i1.overlaps(i2));
        } else {
            prop_assert!(!i1.overlaps(i2));
        }
    }
}

// --------------------------------------------- FTI snapshot consistency

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// After an arbitrary sequence of versions, `FTI_lookup_T(w, t)` must
    /// equal a direct scan of the reconstructed snapshot at `t`, for every
    /// version boundary and probe word.
    #[test]
    fn fti_matches_reconstructed_snapshots(specs in prop::collection::vec(spec_strategy(), 2..5)) {
        let db = Database::in_memory();
        let mut times = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let t = tree_from(spec);
            let ts = Timestamp::from_secs(10 + i as u64 * 10);
            // Strip identity: the db assigns its own.
            let mut fresh = parse_document(&to_string(&t)).unwrap();
            let ids: Vec<NodeId> = fresh.iter().collect();
            for id in ids {
                fresh.node_mut(id).xid = Xid::NONE;
            }
            let r = db.put_tree("doc", fresh, ts).unwrap();
            if r.changed {
                times.push(ts);
            }
        }
        let doc = db.store().doc_id("doc").unwrap().unwrap();
        let words = ["red", "blue", "15", "hello", "zz"];
        for &probe in &times {
            let v = db.store().version_at(doc, probe).unwrap().unwrap();
            let snapshot = db.store().version_tree(doc, v).unwrap();
            for w in words {
                let expected = snapshot
                    .iter()
                    .filter(|&n| snapshot.node(n).is_element())
                    .filter(|&n| {
                        element_signature(&snapshot, n)
                            .iter()
                            .any(|(tok, k)| tok == w && *k == OccKind::Word)
                    })
                    .count();
                let got = db
                    .indexes()
                    .fti()
                    .lookup_t(w, OccKind::Word, |d| db.store().version_at(d, probe).unwrap())
                    .len();
                prop_assert_eq!(got, expected, "word {} at {}", w, probe);
            }
        }
    }
}

// ------------------------------------------- planner strategy equivalence

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The index-backed scan and the reconstruct-and-walk fallback must
    /// bind exactly the same rows, over random version sequences and at
    /// random probe times. `//tag` compiles to an index pattern;
    /// `/*//tag` starts with a wildcard step and falls back to the tree
    /// scan — under a single root the two paths are semantically equal
    /// (no generated tag is ever the root element).
    #[test]
    fn index_and_tree_strategies_equivalent(
        specs in prop::collection::vec(spec_strategy(), 2..5),
        probe_sel in 0usize..4,
    ) {
        use temporal_xml::QueryExt;
        let db = Database::in_memory();
        let mut times = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let t = tree_from(spec);
            let ts = Timestamp::from_secs(10 + i as u64 * 10);
            let mut fresh = parse_document(&to_string(&t)).unwrap();
            let ids: Vec<NodeId> = fresh.iter().collect();
            for id in ids {
                fresh.node_mut(id).xid = Xid::NONE;
            }
            let r = db.put_tree("doc", fresh, ts).unwrap();
            if r.changed {
                times.push(ts);
            }
        }
        prop_assume!(!times.is_empty());
        let probe = times[probe_sel % times.len()];
        let now = Timestamp::from_secs(1000);
        for tag in ["item", "name", "price", "a", "b"] {
            for spec in [format!("[{}]", probe.micros()), "[EVERY]".to_string(), String::new()] {
                let via_index =
                    format!(r#"SELECT R FROM doc("doc"){spec}//{tag} R"#);
                let via_scan =
                    format!(r#"SELECT R FROM doc("doc"){spec}/*//{tag} R"#);
                let a = db.query(&via_index).at(now).run().unwrap();
                let b = db.query(&via_scan).at(now).run().unwrap();
                // Row order is unspecified (no ORDER BY in the dialect):
                // compare as multisets.
                let norm = |r: &temporal_xml::QueryResult| {
                    let mut rows: Vec<String> =
                        r.rows.iter().map(|row| format!("{row:?}")).collect();
                    rows.sort();
                    rows
                };
                prop_assert_eq!(norm(&a), norm(&b), "tag {} spec {:?}", tag, spec);
            }
        }
    }
}

// ----------------------------------------------- cache transparency

/// One step of a random store workload over a small set of documents.
#[derive(Clone, Debug)]
enum DbOp {
    Put(usize, Spec),
    Delete(usize),
    Vacuum(usize, u8),
    Read(usize, u8),
}

fn db_op_strategy() -> impl Strategy<Value = DbOp> {
    prop_oneof![
        5 => (0usize..2, spec_strategy()).prop_map(|(d, s)| DbOp::Put(d, s)),
        1 => (0usize..2).prop_map(DbOp::Delete),
        1 => (0usize..2, 0u8..4).prop_map(|(d, f)| DbOp::Vacuum(d, f)),
        3 => (0usize..2, 0u8..4).prop_map(|(d, f)| DbOp::Read(d, f)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The materialized-version cache must be invisible: the same random
    /// interleaving of puts, deletes, vacuums and reads against a cached
    /// and an uncached database yields byte-identical serializations for
    /// every readable version — both mid-run (where reads double as cache
    /// warmers on one side only) and in a final sweep over all history.
    #[test]
    fn cache_on_and_off_are_byte_identical(ops in prop::collection::vec(db_op_strategy(), 1..24)) {
        use temporal_xml::storage::repo::VersionKind;
        use temporal_xml::DbOptions;

        let cached = DbOptions::new().cache_bytes(8 << 20).open().unwrap();
        let plain = DbOptions::new().cache_bytes(0).open().unwrap();
        prop_assert!(plain.store().vcache().is_disabled());

        let name = |d: usize| format!("doc{d}");
        for (step, op) in ops.iter().enumerate() {
            let now = Timestamp::from_secs(10 + step as u64);
            match op {
                DbOp::Put(d, spec) => {
                    let xml = to_string(&tree_from(spec));
                    let a = cached.put(&name(*d), &xml, now).unwrap();
                    let b = plain.put(&name(*d), &xml, now).unwrap();
                    prop_assert_eq!(a.version, b.version);
                    prop_assert_eq!(a.changed, b.changed);
                }
                DbOp::Delete(d) => {
                    let a = cached.delete(&name(*d), now).unwrap();
                    let b = plain.delete(&name(*d), now).unwrap();
                    prop_assert_eq!(a.is_some(), b.is_some());
                }
                DbOp::Vacuum(d, f) => {
                    let horizon =
                        Timestamp::from_secs(10 + step as u64 * u64::from(*f) / 4);
                    let a = cached.vacuum(&name(*d), horizon).unwrap();
                    let b = plain.vacuum(&name(*d), horizon).unwrap();
                    prop_assert_eq!(a.is_some(), b.is_some());
                }
                DbOp::Read(d, f) => {
                    let Some(doc_a) = cached.store().doc_id(&name(*d)).unwrap() else {
                        continue;
                    };
                    let doc_b = plain.store().doc_id(&name(*d)).unwrap().unwrap();
                    let readable: Vec<VersionId> = cached
                        .store()
                        .versions(doc_a)
                        .unwrap()
                        .iter()
                        .filter(|e| e.kind == VersionKind::Content)
                        .map(|e| e.version)
                        .collect();
                    if readable.is_empty() {
                        continue;
                    }
                    let v = readable[usize::from(*f) * readable.len() / 4 % readable.len()];
                    // Read twice on the cached side: the second read takes
                    // the hit path and must still agree byte-for-byte.
                    let want = to_string(&plain.store().version_tree(doc_b, v).unwrap());
                    let got1 = to_string(&cached.store().version_tree(doc_a, v).unwrap());
                    let got2 = to_string(&cached.store().version_tree(doc_a, v).unwrap());
                    prop_assert_eq!(&got1, &want, "first read of v{} differs", v.0);
                    prop_assert_eq!(&got2, &want, "cached re-read of v{} differs", v.0);
                }
            }
        }

        // Final sweep: identical catalogs, identical version chains,
        // byte-identical trees for everything still readable.
        let docs_a = cached.store().list().unwrap();
        let docs_b = plain.store().list().unwrap();
        prop_assert_eq!(docs_a.len(), docs_b.len());
        for d in 0..2usize {
            let (Some(doc_a), Some(doc_b)) = (
                cached.store().doc_id(&name(d)).unwrap(),
                plain.store().doc_id(&name(d)).unwrap(),
            ) else {
                continue;
            };
            let vs_a = cached.store().versions(doc_a).unwrap();
            let vs_b = plain.store().versions(doc_b).unwrap();
            prop_assert_eq!(vs_a.len(), vs_b.len());
            for (ea, eb) in vs_a.iter().zip(&vs_b) {
                prop_assert_eq!(ea.version, eb.version);
                prop_assert_eq!(ea.ts, eb.ts);
                prop_assert_eq!(ea.kind, eb.kind);
                if ea.kind != VersionKind::Content {
                    continue;
                }
                let ta = to_string(&cached.store().version_tree(doc_a, ea.version).unwrap());
                let tb = to_string(&plain.store().version_tree(doc_b, eb.version).unwrap());
                prop_assert_eq!(ta, tb, "doc{} v{} differs", d, ea.version.0);
            }
        }
    }
}

// ------------------------------------- index checkpoint equivalence

/// One step of a random workload that ends in a checkpointed close.
#[derive(Clone, Debug)]
enum CkptOp {
    Put(usize, Spec),
    Delete(usize),
    Vacuum(usize, u8),
    Checkpoint,
}

fn ckpt_op_strategy() -> impl Strategy<Value = CkptOp> {
    prop_oneof![
        6 => (0usize..3, spec_strategy()).prop_map(|(d, s)| CkptOp::Put(d, s)),
        2 => (0usize..3).prop_map(CkptOp::Delete),
        1 => (0usize..3, 0u8..4).prop_map(|(d, f)| CkptOp::Vacuum(d, f)),
        1 => Just(CkptOp::Checkpoint),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Loading a persisted index checkpoint must be invisible: after an
    /// arbitrary interleaving of puts, deletes, vacuums and mid-run
    /// checkpoints, a reopen that loads the checkpoint (plus tail replay)
    /// and a reopen that replays the full history answer `lookup`,
    /// `lookup_t` and `lookup_h` identically for every probe word at
    /// every write timestamp.
    #[test]
    fn checkpoint_load_equals_full_replay(ops in prop::collection::vec(ckpt_op_strategy(), 1..20)) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use temporal_xml::DbOptions;

        static CASE: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "txdb-props-ckpt-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let name = |d: usize| format!("doc{d}");
        let mut times = Vec::new();
        {
            let db = DbOptions::at(&dir).open().unwrap();
            for (step, op) in ops.iter().enumerate() {
                let now = Timestamp::from_secs(10 + step as u64);
                match op {
                    CkptOp::Put(d, spec) => {
                        let xml = to_string(&tree_from(spec));
                        if db.put(&name(*d), &xml, now).unwrap().changed {
                            times.push(now);
                        }
                    }
                    CkptOp::Delete(d) => {
                        if db.delete(&name(*d), now).unwrap().is_some() {
                            times.push(now);
                        }
                    }
                    CkptOp::Vacuum(d, f) => {
                        let horizon =
                            Timestamp::from_secs(10 + step as u64 * u64::from(*f) / 4);
                        let _ = db.vacuum(&name(*d), horizon).unwrap();
                    }
                    CkptOp::Checkpoint => db.checkpoint().unwrap(),
                }
            }
            db.close().unwrap();
        }

        // Gather every answer from the checkpoint-loaded handle first,
        // then from a full-replay handle (sequentially — the store is
        // single-writer), and compare.
        let words = ["red", "blue", "15", "hello", "zz", "item", "name"];
        let answers = |checkpoints: bool| {
            let db = DbOptions::at(&dir).index_checkpoints(checkpoints).open().unwrap();
            let report = db.recovery_report().index_checkpoint.clone();
            let fti = db.indexes().fti();
            let mut out: Vec<(String, Vec<String>)> = Vec::new();
            let norm = |mut v: Vec<String>| {
                v.sort();
                v
            };
            for w in words {
                for kind in [OccKind::Word, OccKind::Name] {
                    let cur = fti.lookup(w, kind).iter().map(|p| format!("{p:?}")).collect();
                    out.push((format!("lookup {w} {kind:?}"), norm(cur)));
                    let hist = fti.lookup_h(w, kind).iter().map(|p| format!("{p:?}")).collect();
                    out.push((format!("lookup_h {w} {kind:?}"), norm(hist)));
                    for &t in &times {
                        let at = fti
                            .lookup_t(w, kind, |d| db.store().version_at(d, t).unwrap())
                            .iter()
                            .map(|p| format!("{p:?}"))
                            .collect();
                        out.push((format!("lookup_t {w} {kind:?} @{}", t.micros()), norm(at)));
                    }
                }
            }
            (report, out)
        };
        let (loaded_report, loaded) = answers(true);
        let (replayed_report, replayed) = answers(false);
        prop_assert_eq!(
            loaded_report.state,
            temporal_xml::storage::IndexCheckpointState::Loaded,
            "close() must leave a loadable checkpoint (note: {:?})",
            loaded_report.note
        );
        prop_assert_eq!(
            replayed_report.state,
            temporal_xml::storage::IndexCheckpointState::Absent
        );
        for ((la, lv), (ra, rv)) in loaded.iter().zip(&replayed) {
            prop_assert_eq!(la, ra);
            prop_assert_eq!(lv, rv, "checkpoint-loaded and replayed answers differ for {}", la);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
