//! End-to-end reproduction of the paper's running example: Figure 1's
//! restaurant guide and every query the paper states (Q1–Q3, the §5/§6
//! snippets, the §7.4 price-increase join) — experiment F1.

use temporal_xml::core::ops::lifetime::LifetimeStrategy;
use temporal_xml::wgen::restaurant::{figure1_versions, GUIDE_URL};
use temporal_xml::{Database, Eid, Interval, QueryExt, Timestamp, VersionId};

fn jan(d: u32) -> Timestamp {
    Timestamp::from_date(2001, 1, d)
}

fn db() -> Database {
    let db = Database::in_memory();
    for (ts, xml) in figure1_versions() {
        db.put(GUIDE_URL, &xml, ts).unwrap();
    }
    db
}

fn run(db: &Database, q: &str) -> temporal_xml::QueryResult {
    db.query(q).at(Timestamp::from_date(2001, 2, 20)).run().unwrap()
}

#[test]
fn figure1_versions_reconstruct_exactly() {
    let db = db();
    let doc = db.store().doc_id(GUIDE_URL).unwrap().unwrap();
    let expect = [
        "<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>",
        "<guide><restaurant><name>Napoli</name><price>15</price></restaurant>\
         <restaurant><name>Akropolis</name><price>13</price></restaurant></guide>",
        "<guide><restaurant><name>Napoli</name><price>18</price></restaurant></guide>",
    ];
    for (v, want) in expect.iter().enumerate() {
        let t = db.store().version_tree(doc, VersionId(v as u32)).unwrap();
        assert_eq!(&temporal_xml::xml::to_string(&t), want, "version {v}");
    }
}

#[test]
fn q1_snapshot_26_01() {
    let db = db();
    let r = run(&db, r#"SELECT R FROM doc("guide.com/restaurants")[26/01/2001]//restaurant R"#);
    assert_eq!(
        r.to_xml(),
        "<results>\
         <result><restaurant><name>Napoli</name><price>15</price></restaurant></result>\
         <result><restaurant><name>Akropolis</name><price>13</price></restaurant></result>\
         </results>"
    );
}

#[test]
fn q2_count_without_reconstruction() {
    let db = db();
    let r =
        run(&db, r#"SELECT COUNT(R) FROM doc("guide.com/restaurants")[26/01/2001]//restaurant R"#);
    assert_eq!(r.rows[0][0].as_text(), "2");
    assert_eq!(
        r.stats.reconstructions, 0,
        "the paper's Q2 claim: no reconstruction for aggregates"
    );
}

#[test]
fn q3_napoli_price_history() {
    let db = db();
    let r = run(
        &db,
        r#"SELECT TIME(R), R/price
           FROM doc("guide.com/restaurants")[EVERY]//restaurant R
           WHERE R/name = "Napoli""#,
    );
    // One row per document version in which the Napoli binding matches.
    assert_eq!(r.len(), 3);
    let xml = r.to_xml();
    assert!(xml.contains("<price>15</price>"));
    assert!(xml.contains("<price>18</price>"));
    assert!(xml.contains("2001-01-31"));
    // Akropolis never matches the WHERE clause.
    assert!(!xml.contains("13"));
}

#[test]
fn akropolis_lifetime() {
    // Akropolis existed only in [15/01, 31/01).
    let db = db();
    let doc = db.store().doc_id(GUIDE_URL).unwrap().unwrap();
    let v1 = db.store().version_tree(doc, VersionId(1)).unwrap();
    let akro = v1
        .iter()
        .find(|&n| {
            v1.node(n).name() == Some("restaurant") && v1.text_content(n).contains("Akropolis")
        })
        .unwrap();
    let eid = Eid::new(doc, v1.node(akro).xid);
    for strat in [LifetimeStrategy::Traverse, LifetimeStrategy::Index] {
        assert_eq!(db.cre_time(eid.at(jan(20)), strat).unwrap(), jan(15), "{strat:?}");
        assert_eq!(db.del_time(eid.at(jan(20)), strat).unwrap(), jan(31), "{strat:?}");
    }
    // Its element history has exactly one version.
    let h = db.element_history(eid, Interval::ALL).unwrap();
    assert_eq!(h.len(), 1);
    assert_eq!(
        temporal_xml::xml::to_string(&h[0].subtree),
        "<restaurant><name>Akropolis</name><price>13</price></restaurant>"
    );
}

#[test]
fn napoli_identity_persists_across_all_versions() {
    let db = db();
    let doc = db.store().doc_id(GUIDE_URL).unwrap().unwrap();
    let xid_at = |v: u32| {
        let t = db.store().version_tree(doc, VersionId(v)).unwrap();
        let n = t
            .iter()
            .find(|&n| {
                t.node(n).name() == Some("restaurant") && t.text_content(n).contains("Napoli")
            })
            .unwrap();
        t.node(n).xid
    };
    assert_eq!(xid_at(0), xid_at(1));
    assert_eq!(xid_at(1), xid_at(2), "price change preserves identity");
}

#[test]
fn doc_history_is_backwards() {
    let db = db();
    let doc = db.store().doc_id(GUIDE_URL).unwrap().unwrap();
    let h = db.doc_history(doc, Interval::ALL).unwrap();
    assert_eq!(h.len(), 3);
    assert_eq!(h[0].ts, jan(31), "most recent first (§7.3.4)");
    assert_eq!(h[2].ts, jan(1));
}

#[test]
fn previous_next_current_ts_chain() {
    let db = db();
    let doc = db.store().doc_id(GUIDE_URL).unwrap().unwrap();
    let cur = db.store().current_tree(doc).unwrap();
    let eid = Eid::new(doc, cur.node(cur.root().unwrap()).xid);
    assert_eq!(db.current_ts(eid).unwrap(), Some(jan(31)));
    assert_eq!(db.previous_ts(eid.at(jan(31))).unwrap(), Some(jan(15)));
    assert_eq!(db.next_ts(eid.at(jan(1))).unwrap(), Some(jan(15)));
    assert_eq!(db.previous_ts(eid.at(jan(1))).unwrap(), None);
    assert_eq!(db.next_ts(eid.at(jan(31))).unwrap(), None);
}

#[test]
fn section_7_4_price_increase_join() {
    let db = db();
    let r = run(
        &db,
        r#"SELECT R1/name
           FROM doc("guide.com/restaurants")[10/01/2001]//restaurant R1,
                doc("guide.com/restaurants")//restaurant R2
           WHERE R1/name = R2/name AND R1/price < R2/price"#,
    );
    assert_eq!(r.to_xml(), "<results><result><name>Napoli</name></result></results>");
}

#[test]
fn diff_operator_produces_queryable_xml() {
    let db = db();
    let doc = db.store().doc_id(GUIDE_URL).unwrap().unwrap();
    let cur = db.store().current_tree(doc).unwrap();
    let eid = Eid::new(doc, cur.node(cur.root().unwrap()).xid);
    let script = db.diff(eid.at(jan(1)), eid.at(jan(31))).unwrap();
    let text = temporal_xml::xml::to_string(&script);
    // Closure (§6): the script is an XML document that parses and decodes.
    let reparsed = temporal_xml::xml::parse_document(&text).unwrap();
    let delta = temporal_xml::delta::delta_from_xml(&reparsed).unwrap();
    assert!(!delta.is_empty());
}

#[test]
fn snapshot_before_and_after_history() {
    let db = db();
    // Before the first version: nothing.
    let r =
        run(&db, r#"SELECT COUNT(R) FROM doc("guide.com/restaurants")[25/12/2000]//restaurant R"#);
    assert_eq!(r.rows[0][0].as_text(), "0");
    // Long after the last version: the current list.
    let r =
        run(&db, r#"SELECT R/price FROM doc("guide.com/restaurants")[01/06/2001]//restaurant R"#);
    assert_eq!(r.to_xml(), "<results><result><price>18</price></result></results>");
}
