//! Differential testing: the temporal engine against the stratum oracle.
//!
//! The stratum baseline stores every version complete and evaluates
//! pattern queries by scanning and tree-matching — no deltas, no FTI, no
//! version ranges. On any workload, both systems must agree on snapshot
//! counts, all-version counts and history selections. Randomized (seeded)
//! workloads drive both systems through the same update stream and compare
//! at many probe times.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use temporal_xml::stratum::StratumDb;
use temporal_xml::wgen::restaurant::RestaurantGuide;
use temporal_xml::wgen::tdocgen::{DocGen, DocGenConfig};
use temporal_xml::xml::pattern::{PatternNode, PatternTree};
use temporal_xml::{Database, Interval, Timestamp};

fn ts(n: u64) -> Timestamp {
    Timestamp::from_secs(1_000_000 + n * 60)
}

/// Counts matches of the temporal engine at time t (index path).
fn temporal_count_at(db: &Database, pattern: &PatternTree, t: Timestamp) -> usize {
    db.tpattern_scan(None, pattern, t).unwrap().len()
}

/// Counts matches across all versions (index path).
fn temporal_count_all(db: &Database, pattern: &PatternTree) -> usize {
    db.tpattern_scan_all(None, pattern).unwrap().len()
}

/// Counts matches of the stratum at time t.
fn stratum_count_at(s: &StratumDb, pattern: &PatternTree, t: Timestamp) -> usize {
    s.count_at(pattern, t).0
}

fn stratum_count_all(s: &StratumDb, pattern: &PatternTree) -> usize {
    s.pattern_all(pattern).0.iter().map(|m| m.subtrees.len()).sum()
}

#[test]
fn restaurant_guide_agreement() {
    let db = Database::in_memory();
    let mut strat = StratumDb::new();
    let mut guide = RestaurantGuide::new(25, 42);

    let mut step = 0u64;
    let mut put_both = |xml: &str, step: u64| {
        db.put("guide", xml, ts(step)).unwrap();
        strat.put("guide", xml, ts(step)).unwrap();
    };
    put_both(&guide.xml(), step);
    for _ in 0..30 {
        step += 1;
        let xml = guide.step(3);
        put_both(&xml, step);
    }

    let patterns: Vec<PatternTree> = vec![
        PatternTree::new(PatternNode::tag("restaurant").project()),
        PatternTree::new(
            PatternNode::tag("restaurant").project().child(PatternNode::tag("name").word("napoli")),
        ),
        PatternTree::new(PatternNode::tag("guide").descendant(PatternNode::tag("price").project())),
        PatternTree::new(PatternNode::tag("restaurant").word("italian").project()),
    ];

    for p in &patterns {
        // Probe many instants, including between versions and out of range.
        for probe in 0..=32 {
            let t = ts(probe) + temporal_xml::Duration::from_secs(30);
            assert_eq!(
                temporal_count_at(&db, p, t),
                stratum_count_at(&strat, p, t),
                "snapshot mismatch at probe {probe}"
            );
        }
        assert_eq!(
            temporal_count_all(&db, p),
            stratum_count_all(&strat, p),
            "all-versions mismatch"
        );
    }
}

#[test]
fn tdocgen_agreement_with_churn() {
    let db = Database::in_memory();
    let mut strat = StratumDb::new();
    let cfg = DocGenConfig {
        items: 15,
        changes_per_version: 6,
        w_update: 4,
        w_insert: 3,
        w_delete: 3,
        vocabulary: 40,
        ..Default::default()
    };
    let mut gens: Vec<DocGen> = (0..4).map(|i| DocGen::new(cfg.clone(), 100 + i)).collect();

    let mut step = 0u64;
    for round in 0..12 {
        for (i, g) in gens.iter_mut().enumerate() {
            step += 1;
            let xml = if round == 0 { g.xml() } else { g.step() };
            let url = format!("doc{i}");
            db.put(&url, &xml, ts(step)).unwrap();
            strat.put(&url, &xml, ts(step)).unwrap();
        }
    }

    // Patterns over zipf words: common head word, mid word, structural.
    let patterns: Vec<PatternTree> = vec![
        PatternTree::new(
            PatternNode::tag("item")
                .project()
                .child(PatternNode::tag("text").word(DocGen::word_at_rank(0))),
        ),
        PatternTree::new(
            PatternNode::tag("item")
                .project()
                .child(PatternNode::tag("text").word(DocGen::word_at_rank(10))),
        ),
        PatternTree::new(PatternNode::tag("doc").child(PatternNode::tag("item").project())),
        PatternTree::new(PatternNode::tag("kind").word("review").project()),
    ];

    for p in &patterns {
        for probe in [1u64, 5, 13, 25, 37, 48, 60] {
            let t = ts(probe) + temporal_xml::Duration::from_secs(10);
            assert_eq!(
                temporal_count_at(&db, p, t),
                stratum_count_at(&strat, p, t),
                "snapshot mismatch at probe {probe} for {p:?}"
            );
        }
        assert_eq!(
            temporal_count_all(&db, p),
            stratum_count_all(&strat, p),
            "all-versions mismatch for {p:?}"
        );
    }
}

#[test]
fn deletions_and_resurrections_agree() {
    let db = Database::in_memory();
    let mut strat = StratumDb::new();
    let mut rng = StdRng::seed_from_u64(77);

    let p = PatternTree::new(PatternNode::tag("entry").project());
    let mut step = 0u64;
    let mut alive = [false; 3];
    for round in 0..25 {
        let i = rng.gen_range(0..3usize);
        step += 1;
        let url = format!("page{i}");
        if alive[i] && rng.gen_bool(0.3) {
            db.delete(&url, ts(step)).unwrap();
            strat.delete(&url, ts(step)).unwrap();
            alive[i] = false;
        } else {
            let n = rng.gen_range(1..5);
            let xml = format!(
                "<page>{}</page>",
                (0..n).map(|k| format!("<entry><v>r{round}k{k}</v></entry>")).collect::<String>()
            );
            db.put(&url, &xml, ts(step)).unwrap();
            strat.put(&url, &xml, ts(step)).unwrap();
            alive[i] = true;
        }
    }

    for probe in 0..=26u64 {
        let t = ts(probe) + temporal_xml::Duration::from_secs(10);
        assert_eq!(temporal_count_at(&db, &p, t), stratum_count_at(&strat, &p, t), "probe {probe}");
    }
}

#[test]
fn doc_history_selection_agrees() {
    let db = Database::in_memory();
    let mut strat = StratumDb::new();
    for i in 0..10u64 {
        let xml = format!("<a><v>{i}</v></a>");
        db.put("d", &xml, ts(i * 10)).unwrap();
        strat.put("d", &xml, ts(i * 10)).unwrap();
    }
    let doc = db.store().doc_id("d").unwrap().unwrap();
    for (a, b) in [(0u64, 100u64), (5, 25), (10, 11), (95, 200), (200, 300), (0, 1)] {
        let iv = Interval::new(ts(a), ts(b));
        let th = db.doc_history(doc, iv).unwrap();
        let sh = strat.doc_history("d", iv);
        assert_eq!(th.len(), sh.len(), "interval [{a},{b})");
        for (x, y) in th.iter().zip(&sh) {
            assert_eq!(x.ts, y.ts);
            assert_eq!(
                temporal_xml::xml::to_string(&x.tree),
                temporal_xml::xml::to_string(&y.tree)
            );
        }
    }
}

/// The streaming cursor against the materialising executor: for any
/// (seeded random) workload and query, `stream()` must yield exactly the
/// rows `run()` materialises, in the same order — and a `.limit(n)`
/// stream must yield exactly the first `n` of them.
#[test]
fn stream_equals_run_on_random_workloads() {
    use temporal_xml::QueryExt;
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for trial in 0..8u64 {
        let db = Database::in_memory();
        let docs = 1 + rng.gen_range(0..3) as usize;
        let mut step = 0u64;
        for d in 0..docs {
            let versions = 1 + rng.gen_range(0..5) as usize;
            for _ in 0..versions {
                step += 1;
                let n = 1 + rng.gen_range(0..6) as usize;
                let xml = format!(
                    "<shop>{}</shop>",
                    (0..n)
                        .map(|k| format!(
                            "<item><name>n{}</name><price>{}</price></item>",
                            rng.gen_range(0..4),
                            10 + k
                        ))
                        .collect::<String>()
                );
                db.put(&format!("doc{d}"), &xml, ts(step)).unwrap();
            }
        }
        let probe = ts(step + 1);
        let queries = [
            r#"SELECT R/name FROM doc("*")//item R"#.to_string(),
            r#"SELECT R/name, R/price FROM doc("*")[EVERY]//item R"#.to_string(),
            format!(r#"SELECT R/price FROM doc("*")[{}]//item R"#, ts(step).micros()),
            r#"SELECT TIME(R) FROM doc("*")[EVERY]//item R WHERE R/name = "n1""#.to_string(),
            r#"SELECT COUNT(*) FROM doc("*")[EVERY]//item R"#.to_string(),
            r#"SELECT DISTINCT R/name FROM doc("*")//item R"#.to_string(),
            r#"SELECT R1/name FROM doc("doc0")//item R1, doc("*")//item R2
               WHERE R1/price < R2/price"#
                .to_string(),
            r#"SELECT R/name FROM doc("*")[EVERY]//item R LIMIT 3"#.to_string(),
        ];
        for q in &queries {
            let ran = db.query(q).at(probe).run().unwrap();
            let streamed: Vec<_> =
                db.query(q).at(probe).stream().unwrap().collect::<Result<Vec<_>, _>>().unwrap();
            assert_eq!(ran.rows, streamed, "trial {trial}: {q}");
            // A limit-k stream is a strict prefix of the full result.
            let k = 1 + (trial as usize % 2);
            let limited: Vec<_> = db
                .query(q)
                .at(probe)
                .limit(k)
                .stream()
                .unwrap()
                .collect::<Result<Vec<_>, _>>()
                .unwrap();
            let expect: Vec<_> = ran.rows.iter().take(k).cloned().collect();
            assert_eq!(limited, expect, "trial {trial} limit {k}: {q}");
        }
    }
}
