//! Crash-point recovery sweep over the fault-injecting VFS.
//!
//! A scripted workload of puts, deletes and checkpoints runs against a
//! [`FaultyVfs`] that crashes after the Nth file-system operation, for a
//! sweep of N covering the whole workload. Each crash point is reopened
//! (the crash disarms the fault schedule) and the durability contract is
//! checked:
//!
//! * **Never a panic** — every outcome is a value: full recovery, a
//!   read-only salvage open, or a structured open error.
//! * **Never silently missing committed versions** — when the reopened
//!   store passes `fsck`, every operation the workload saw commit
//!   (`wal_sync = true`, so an `Ok` return means the WAL record was
//!   fsynced) is present with byte-exact content; when a torn page write
//!   destroyed data, `fsck` says so.
//! * **Every surviving delta chain walks** — reconstruction of every
//!   version either succeeds or returns a structured error, and on a
//!   clean store it always succeeds.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use temporal_xml::base::Error;
use temporal_xml::core::DbOptions;
use temporal_xml::storage::repo::VersionKind;
use temporal_xml::storage::{DocumentStore, FaultyVfs, PHYS_PAGE_SIZE};
use temporal_xml::xml::to_string;
use temporal_xml::{Database, StoreOptions, Timestamp};

fn ts(n: u64) -> Timestamp {
    Timestamp::from_secs(2_000_000 + n)
}

/// Paths are virtual (the FaultyVfs holds file images in memory), but the
/// store still `create_dir_all`s them on the real fs — keep them unique.
fn tmpdir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("txdb-cp-{tag}-{}-{n}", std::process::id()))
}

fn db_opts(vfs: &FaultyVfs, dir: &std::path::Path) -> DbOptions {
    DbOptions {
        store: StoreOptions {
            path: Some(dir.to_path_buf()),
            // An Ok return must mean "durable": fsync the WAL per append.
            wal_sync: true,
            vfs: Some(Arc::new(vfs.clone())),
            ..Default::default()
        },
        ..Default::default()
    }
}

enum Op {
    Put(&'static str, String, u64),
    Delete(&'static str, u64),
    Checkpoint,
}

/// The scripted workload: three documents, interleaved updates, a delete,
/// a resurrection, and checkpoints at three different phases.
fn script() -> Vec<Op> {
    let mut ops = Vec::new();
    ops.push(Op::Put("alpha", "<a><w>seed</w></a>".into(), 1));
    for i in 2..=5u64 {
        ops.push(Op::Put("alpha", format!("<a><w>alpha{i}</w></a>"), i));
    }
    ops.push(Op::Put("beta", "<b><w>born</w></b>".into(), 6));
    ops.push(Op::Checkpoint);
    ops.push(Op::Put("beta", "<b><w>grown</w></b>".into(), 7));
    ops.push(Op::Put("gamma", "<g><w>third</w></g>".into(), 8));
    ops.push(Op::Delete("beta", 9));
    ops.push(Op::Checkpoint);
    for i in 10..=13u64 {
        ops.push(Op::Put("gamma", format!("<g><w>gamma{i}</w></g>"), i));
    }
    ops.push(Op::Put("beta", "<b><w>reborn</w></b>".into(), 14));
    ops.push(Op::Checkpoint);
    ops
}

/// One committed version in the model: `content = None` is a tombstone.
struct ModelVersion {
    ts: u64,
    content: Option<String>,
}

type Model = BTreeMap<&'static str, Vec<ModelVersion>>;

/// Runs the script until the first error (the crash), recording every
/// operation that committed. Returns the committed model.
fn run_attempt(opts: &DbOptions) -> Model {
    let mut model = Model::new();
    let Ok(db) = Database::open(opts.clone()) else {
        return model;
    };
    for op in script() {
        match op {
            Op::Put(name, xml, t) => match db.put(name, &xml, ts(t)) {
                Ok(_) => {
                    model.entry(name).or_default().push(ModelVersion { ts: t, content: Some(xml) })
                }
                Err(_) => break,
            },
            Op::Delete(name, t) => match db.delete(name, ts(t)) {
                Ok(_) => model.entry(name).or_default().push(ModelVersion { ts: t, content: None }),
                Err(_) => break,
            },
            Op::Checkpoint => {
                if db.checkpoint().is_err() {
                    break;
                }
            }
        }
    }
    model
}

/// Full-recovery check: every committed version exists, reconstructs to
/// byte-exact content, and carries the right timestamp and kind. At most
/// one trailing extra version per document is allowed — the operation
/// in flight at the crash, whose WAL record was already durable.
fn verify_committed(db: &Database, model: &Model) {
    for (name, versions) in model {
        let doc = db
            .store()
            .doc_id(name)
            .unwrap()
            .unwrap_or_else(|| panic!("committed document {name} missing after recovery"));
        let entries = db.store().versions(doc).unwrap();
        assert!(
            entries.len() >= versions.len(),
            "{name}: {} committed versions, only {} present",
            versions.len(),
            entries.len()
        );
        assert!(
            entries.len() <= versions.len() + 1,
            "{name}: more extra versions than one in-flight op can explain"
        );
        for (i, mv) in versions.iter().enumerate() {
            let e = &entries[i];
            assert_eq!(e.ts, ts(mv.ts), "{name} v{i}: wrong timestamp");
            match &mv.content {
                Some(xml) => {
                    assert_eq!(e.kind, VersionKind::Content, "{name} v{i}: wrong kind");
                    let tree = db
                        .store()
                        .version_tree(doc, e.version)
                        .unwrap_or_else(|err| panic!("{name} v{i}: unreadable: {err}"));
                    assert_eq!(&to_string(&tree), xml, "{name} v{i}: wrong content");
                }
                None => {
                    assert_eq!(e.kind, VersionKind::Tombstone, "{name} v{i}: wrong kind");
                }
            }
        }
    }
    // Index rebuild matches the store: the FTI (rebuilt from scratch at
    // open) serves the current word of every live document.
    for (name, versions) in model {
        let doc = db.store().doc_id(name).unwrap().unwrap();
        let entries = db.store().versions(doc).unwrap();
        // Skip documents whose tail may be the in-flight extra version.
        if entries.len() != versions.len() {
            continue;
        }
        if let Some(ModelVersion { content: Some(xml), .. }) = versions.last() {
            let word_start = xml.find("<w>").unwrap() + 3;
            let word = &xml[word_start..xml.find("</w>").unwrap()];
            let fti = db.indexes().fti();
            let hits = fti.lookup(word, temporal_xml::index::fti::OccKind::Word);
            assert_eq!(hits.len(), 1, "{name}: FTI missing current word {word}");
        }
    }
}

/// Degraded check: whatever survives must be reachable without panicking;
/// reconstruction may fail, but only with a structured error.
fn exercise_reads(db: &Database) {
    let store = db.store();
    if let Ok(list) = store.list() {
        for (doc, _) in list {
            if let Ok(entries) = store.versions(doc) {
                for e in &entries {
                    if e.kind == VersionKind::Content {
                        let _ = store.version_tree(doc, e.version);
                    }
                }
            }
        }
    }
    // fsck is the never-panics diagnostic of last resort.
    let _ = store.fsck();
}

#[test]
fn crash_point_sweep_recovers_or_salvages() {
    // Fault-free baseline: the whole script commits, and the op counter
    // tells us how wide the sweep must be.
    let dir = tmpdir("sweep");
    let baseline_vfs = FaultyVfs::new(0xC0FF_EE00);
    let baseline = run_attempt(&db_opts(&baseline_vfs, &dir));
    assert_eq!(baseline.len(), 3, "baseline run must complete");
    let total_ops = baseline_vfs.ops();
    assert!(total_ops > 40, "workload too small to sweep ({total_ops} ops)");
    {
        let db = Database::open(db_opts(&baseline_vfs, &dir)).unwrap();
        assert!(db.recovery_report().salvage.is_none());
        verify_committed(&db, &baseline);
    }

    // Sweep: crash after every Nth VFS op. Step keeps the sweep dense at
    // small N (where open/recovery crashes live) while bounding runtime.
    let step = (total_ops as usize / 150).max(1) as u64;
    let (mut clean, mut salvaged, mut detected, mut refused) = (0u32, 0u32, 0u32, 0u32);
    let mut n = 1;
    while n < total_ops {
        let vfs = FaultyVfs::new(0xBAD5_EED0 + n);
        let dir = tmpdir("point");
        let opts = db_opts(&vfs, &dir);
        vfs.crash_after_ops(n);
        let model = run_attempt(&opts);
        assert_eq!(vfs.crash_count(), 1, "crash point {n} did not fire");
        match Database::open(opts) {
            Ok(db) => {
                if db.recovery_report().salvage.is_some() {
                    salvaged += 1;
                    assert!(db.store().is_read_only());
                    // Writes must fail — with ReadOnly when the lookup
                    // path is intact, or with the underlying structured
                    // corruption error when it is not.
                    assert!(
                        db.put("alpha", "<a>nope</a>", ts(99)).is_err(),
                        "salvage mode accepted a write"
                    );
                    exercise_reads(&db);
                } else if db.store().fsck().is_clean() {
                    clean += 1;
                    verify_committed(&db, &model);
                } else {
                    // A torn page write destroyed data the WAL cannot
                    // restore; the loss is detected, not silent.
                    detected += 1;
                    exercise_reads(&db);
                }
            }
            // Roots themselves torn: open refuses with a structured
            // error (stringly inspectable, never a panic).
            Err(e) => {
                refused += 1;
                assert!(!e.to_string().is_empty());
            }
        }
        n += step;
    }
    // The sweep must actually exercise the interesting outcomes: most
    // points recover fully, and at least a few crash mid-recovery-write.
    assert!(clean > 0, "no crash point recovered cleanly");
    assert!(
        clean >= salvaged + detected + refused,
        "degraded outcomes dominate: {clean} clean, {salvaged} salvaged, \
         {detected} detected-loss, {refused} refused"
    );
}

#[test]
fn crash_mid_checkpoint_never_loses_synced_wal() {
    // Target the checkpoint explicitly: run to just before the first
    // checkpoint completes, then crash during it, for several offsets.
    let mut verified = 0;
    for offset in 0..12u64 {
        let dir = tmpdir("ckpt");
        let vfs = FaultyVfs::new(0x5EED_0000 + offset);
        let opts = db_opts(&vfs, &dir);
        // Commit the pre-checkpoint prefix fault-free, then crash inside
        // the checkpoint's page flush (`crash_after_ops` is relative).
        let db = Database::open(opts.clone()).unwrap();
        db.put("alpha", "<a><w>one</w></a>", ts(1)).unwrap();
        db.put("alpha", "<a><w>two</w></a>", ts(2)).unwrap();
        db.put("beta", "<b><w>three</w></b>", ts(3)).unwrap();
        vfs.crash_after_ops(1 + offset);
        let _ = db.checkpoint();
        drop(db);
        if vfs.crash_count() == 0 {
            // Checkpoint finished before the crash point: done probing.
            continue;
        }
        match Database::open(opts) {
            Ok(db) => {
                if db.recovery_report().salvage.is_none() && db.store().fsck().is_clean() {
                    // All three puts were WAL-synced before the
                    // checkpoint: they must all be present.
                    let a = db.store().doc_id("alpha").unwrap().expect("alpha");
                    assert_eq!(db.store().versions(a).unwrap().len(), 2);
                    let b = db.store().doc_id("beta").unwrap().expect("beta");
                    assert_eq!(
                        to_string(&db.store().current_tree(b).unwrap()),
                        "<b><w>three</w></b>"
                    );
                    verified += 1;
                } else {
                    exercise_reads(&db);
                }
            }
            Err(e) => assert!(!e.to_string().is_empty()),
        }
    }
    assert!(verified > 0, "no mid-checkpoint crash recovered cleanly");
}

fn prefix_put(db: &Database, model: &mut Model, name: &'static str, xml: String, t: u64) {
    db.put(name, &xml, ts(t)).unwrap();
    model.entry(name).or_default().push(ModelVersion { ts: t, content: Some(xml) });
}

/// The state every checkpoint-interior attempt rebuilds: interleaved puts,
/// one completed checkpoint (so the probed one runs against a non-zero
/// generation fence), a delete and an overflow-sized document.
fn build_checkpoint_state(db: &Database) -> Model {
    let mut model = Model::new();
    prefix_put(db, &mut model, "alpha", "<a><w>one</w></a>".into(), 1);
    prefix_put(db, &mut model, "alpha", "<a><w>two</w></a>".into(), 2);
    prefix_put(db, &mut model, "beta", "<b><w>born</w></b>".into(), 3);
    db.checkpoint().unwrap();
    let bulk = format!("<g><w>bulk</w><v>{}</v></g>", "x".repeat(9000));
    prefix_put(db, &mut model, "gamma", bulk, 4);
    db.delete("beta", ts(5)).unwrap();
    model.entry("beta").or_default().push(ModelVersion { ts: 5, content: None });
    prefix_put(db, &mut model, "alpha", "<a><w>three</w></a>".into(), 6);
    model
}

/// Checkpoint-interior strictness: no operation is in flight during a
/// checkpoint, so the reopened store must hold *exactly* the committed
/// versions — not one more, not one fewer.
fn verify_exact(db: &Database, model: &Model, point: u64) {
    verify_committed(db, model);
    for (name, versions) in model {
        let doc = db.store().doc_id(name).unwrap().unwrap();
        let got = db.store().versions(doc).unwrap().len();
        assert_eq!(got, versions.len(), "crash point {point}: {name} version count");
    }
}

#[test]
fn checkpoint_interior_sweep_loses_nothing() {
    // With the double-write journal, a crash at *any* file-system
    // operation inside a checkpoint flush — including sub-page tears and
    // cross-file reordering of the unsynced tail — must recover to the
    // exact committed history: outcome 1, never salvage, never detected
    // loss. Measure the checkpoint's op count fault-free first (the
    // fault rng is consumed only at crash time, so the count does not
    // depend on the seed), then crash after every interior op.
    let probe_vfs = FaultyVfs::new(1);
    let probe_dir = tmpdir("ckint-probe");
    let db = Database::open(db_opts(&probe_vfs, &probe_dir)).unwrap();
    build_checkpoint_state(&db);
    let before = probe_vfs.ops();
    db.checkpoint().unwrap();
    let n_ops = probe_vfs.ops() - before;
    drop(db);
    assert!(n_ops >= 10, "checkpoint too small to sweep ({n_ops} ops)");

    let mut journal_replays = 0u64;
    for seed in [0xA11C_E5EEu64, 0x0DD5_EED5] {
        for k in 1..=n_ops {
            let vfs = FaultyVfs::new(seed.wrapping_add(k.wrapping_mul(0x9E37_79B9)));
            let dir = tmpdir("ckint");
            let opts = db_opts(&vfs, &dir);
            let db = Database::open(opts.clone()).unwrap();
            let expect = build_checkpoint_state(&db);
            vfs.crash_after_ops(k);
            assert!(db.checkpoint().is_err(), "crash point {k}: checkpoint survived its crash");
            assert_eq!(vfs.crash_count(), 1, "crash point {k} did not fire");
            drop(db);
            vfs.clear_faults();

            let db = Database::open(opts)
                .unwrap_or_else(|e| panic!("crash point {k} seed {seed:#x}: reopen failed: {e}"));
            let report = db.recovery_report();
            assert!(
                report.salvage.is_none(),
                "crash point {k} seed {seed:#x}: degraded to salvage: {:?}",
                report.salvage
            );
            let fsck = db.store().fsck();
            assert!(fsck.is_clean(), "crash point {k} seed {seed:#x}: fsck dirty:\n{fsck}");
            verify_exact(&db, &expect, k);
            let snap = db.metrics().snapshot();
            journal_replays += snap.counter("recovery.journal_replays").unwrap_or(0);
        }
    }
    // Crash points inside the home-page flush leave a sealed journal
    // behind: the sweep must actually exercise its replay path.
    assert!(journal_replays > 0, "sweep never replayed a checkpoint journal");
}

#[test]
fn byte_flip_in_store_file_surfaces_as_corruption() {
    // End-to-end version of the pager unit test: flip one byte in the
    // durable image of a data page and the read comes back as a
    // structured checksum error, pinpointed by fsck.
    let dir = tmpdir("flip");
    let vfs = FaultyVfs::new(42);
    let store_opts = StoreOptions {
        path: Some(dir.clone()),
        wal_sync: true,
        vfs: Some(Arc::new(vfs.clone())),
        ..Default::default()
    };
    {
        let (store, _) = DocumentStore::open(store_opts.clone()).unwrap();
        // The small first version makes the component roots allocate
        // early; the big second version then spills into overflow pages
        // at the end of the file — pages that open never touches, so the
        // flip survives to the read path.
        store.put("big", "<a><v>tiny</v></a>", ts(1)).unwrap();
        let body = "z".repeat(3 * temporal_xml::storage::PAGE_SIZE);
        store.put("big", &format!("<a><v>{body}</v></a>"), ts(2)).unwrap();
        store.checkpoint().unwrap();
    }
    let db_file = dir.join("data.db");
    let len = vfs.durable_len(&db_file);
    assert!(len >= 2 * PHYS_PAGE_SIZE as u64);
    vfs.corrupt_byte(&db_file, len - PHYS_PAGE_SIZE as u64 + 99, 0x10);

    let (store, report) = DocumentStore::open(store_opts).unwrap();
    assert!(report.salvage.is_none(), "no WAL damage, open is clean");
    let doc = store.doc_id("big").unwrap().unwrap();
    match store.current_tree(doc) {
        Err(Error::Corruption { page, expected, actual }) => {
            assert!(page > 0);
            assert_ne!(expected, actual);
        }
        Ok(_) => panic!("corrupted page read must fail"),
        Err(e) => panic!("expected a checksum error, got: {e}"),
    }
    let r = store.fsck();
    assert!(!r.is_clean());
    assert_eq!(r.bad_pages.len(), 1);
    assert!(
        r.errors.iter().any(|e| e.contains("big")),
        "fsck names the damaged document: {:?}",
        r.errors
    );
}
