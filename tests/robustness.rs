//! Robustness: no panics on hostile input, and safe concurrent use.

use proptest::prelude::*;
use std::sync::Arc;
use temporal_xml::xml::pattern::{PatternNode, PatternTree};
use temporal_xml::{Database, QueryExt, Timestamp};

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The XML parser never panics, whatever the input; it either returns
    /// a tree or a structured error.
    #[test]
    fn xml_parser_never_panics(input in ".{0,200}") {
        let _ = temporal_xml::xml::parse_document(&input);
    }

    /// Same for input biased toward XML-ish shapes.
    #[test]
    fn xml_parser_never_panics_xmlish(input in "[<>/a-z \"=&;!\\[\\]-]{0,120}") {
        let _ = temporal_xml::xml::parse_document(&input);
    }

    /// The query parser never panics.
    #[test]
    fn query_parser_never_panics(input in ".{0,200}") {
        let _ = temporal_xml::parse_query(&input);
    }

    /// Query-ish input: keywords, paths, brackets.
    #[test]
    fn query_parser_never_panics_queryish(
        input in "(SELECT|FROM|WHERE|doc|EVERY|NOW|R|//|/|\\[|\\]|\\(|\\)|\"x\"|=|~|==|,| |[0-9]){0,60}"
    ) {
        let _ = temporal_xml::parse_query(&input);
    }

    /// The full pipeline on arbitrary well-formed-ish queries against a
    /// populated database: errors allowed, panics not.
    #[test]
    fn execute_never_panics(tail in "[a-z/\\*\\[\\]0-9 =\"<>]{0,40}") {
        let db = Database::in_memory();
        db.put("d", "<a><b>x</b></a>", Timestamp::from_secs(1)).unwrap();
        let q = format!(r#"SELECT R FROM doc("d")//b R WHERE {tail}"#);
        let _ = db.query(&q).at(Timestamp::from_secs(2)).run();
    }

    /// Binary codec decode never panics on corrupted bytes.
    #[test]
    fn codec_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = temporal_xml::xml::codec::decode_tree(&bytes);
    }
}

#[test]
fn concurrent_readers_during_writes() {
    let db = Arc::new(Database::in_memory());
    let ts = |n: u64| Timestamp::from_secs(1_000 + n);
    db.put("shared", "<g><item><v>0</v></item></g>", ts(0)).unwrap();

    let pattern = PatternTree::new(PatternNode::tag("item").project());
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let progress = Arc::new(std::sync::atomic::AtomicUsize::new(0));

    // Readers: snapshot scans, history scans, reconstruction, queries.
    let mut readers = Vec::new();
    for r in 0..4 {
        let db = db.clone();
        let stop = stop.clone();
        let progress = progress.clone();
        let pattern = pattern.clone();
        readers.push(std::thread::spawn(move || {
            let mut iters = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let _ = db.pattern_scan(None, &pattern).unwrap();
                let _ = db.tpattern_scan(None, &pattern, ts(r * 7)).unwrap();
                let _ = db.tpattern_scan_all(None, &pattern).unwrap();
                let doc = db.store().doc_id("shared").unwrap().unwrap();
                let _ = db.store().current_tree(doc).unwrap();
                let _ = db
                    .query(r#"SELECT COUNT(R) FROM doc("shared")[EVERY]//item R"#)
                    .at(ts(1_000))
                    .run()
                    .unwrap();
                iters += 1;
                progress.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            iters
        }));
    }

    // Writer: 40 versions while readers hammer.
    for i in 1..=40u64 {
        let items: String = (0..=(i % 5)).map(|k| format!("<item><v>{i}.{k}</v></item>")).collect();
        db.put("shared", &format!("<g>{items}</g>"), ts(i)).unwrap();
    }
    // A fast writer can finish before the reader threads are even
    // scheduled; hold the stop flag until the readers have completed
    // a few iterations against the post-write state.
    while progress.load(std::sync::atomic::Ordering::Relaxed) < 4 {
        std::thread::yield_now();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let mut total = 0;
    for r in readers {
        total += r.join().expect("reader panicked");
    }
    assert!(total > 0, "readers made progress");

    // Post-condition: consistent final state.
    let doc = db.store().doc_id("shared").unwrap().unwrap();
    assert_eq!(db.store().versions(doc).unwrap().len(), 41);
    let m = db.pattern_scan(None, &pattern).unwrap();
    assert_eq!(m.len(), 1, "40 % 5 == 0 → one item in the last version");
}
