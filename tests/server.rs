//! The network front end, end to end: concurrent wire clients against a
//! serial in-process replay, session lifecycle (pins released on
//! disconnect, accept loop survives killed connections), malformed-input
//! hardening, the busy gate and graceful drain.
//!
//! The server's contract: a wire client is just another engine thread.
//! Whatever a query returns in-process it must return byte-identically
//! over the wire, concurrency included; and whatever a session holds
//! (snapshot pins, a half-read cursor) dies with its connection.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use temporal_xml::client::{read_frame, Client, Frame, Json};
use temporal_xml::server::proto::decode;
use temporal_xml::{Database, DbOptions, QueryExt, Server, ServerConfig, Timestamp};

fn ts(n: u64) -> Timestamp {
    Timestamp::from_secs(1_000_000 + n)
}

fn start(db: Arc<Database>) -> Server {
    Server::start(db, ServerConfig::default()).unwrap()
}

/// Polls `cond` for up to two seconds; panics with `what` on timeout.
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A raw wire connection, for driving the protocol below the `Client`
/// abstraction (partial lines, invalid bytes, hand-built frames).
struct Raw {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Raw {
    fn connect(addr: std::net::SocketAddr) -> Raw {
        let stream = TcpStream::connect(addr).unwrap();
        Raw { reader: BufReader::new(stream.try_clone().unwrap()), writer: stream }
    }

    fn send(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).unwrap();
        self.writer.flush().unwrap();
    }

    /// Sends `bytes` as one newline-terminated request line.
    fn send_line(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        Json::parse(line.trim_end()).unwrap()
    }

    fn error_code(&mut self) -> String {
        let resp = self.recv();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false), "{resp}");
        resp.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .expect("error.code")
            .to_string()
    }
}

// ------------------------------------------------------- differential

/// Eight concurrent wire clients, each replaying historical probes, must
/// see exactly what a serial in-process replay sees — byte-identical
/// rendered results. This is the acceptance bar for the whole front end:
/// the wire adds transport, never semantics.
#[test]
fn eight_wire_clients_match_serial_replay() {
    let db = Arc::new(Database::in_memory());
    for i in 0..25u64 {
        db.put("d", &format!("<log><n>{i}</n><w>alpha{i}</w></log>"), ts(i * 10)).unwrap();
    }
    let queries = [
        r#"SELECT R/n FROM doc("d")[EVERY]//log R"#,
        r#"SELECT TIME(R), R/w FROM doc("d")[EVERY]//log R"#,
        r#"SELECT R FROM doc("d")//log R"#,
    ];
    // Probe times straddle every version boundary.
    let probes: Vec<Timestamp> = (0..=50).map(|k| ts(k * 5 + 3)).collect();
    let expected: Vec<String> = probes
        .iter()
        .flat_map(|&p| {
            queries
                .iter()
                .map(move |q| (p, q))
                .map(|(p, q)| db.query(q).at(p).run().unwrap().to_xml())
        })
        .collect();
    let server = start(Arc::clone(&db));
    let addr = server.addr();
    std::thread::scope(|s| {
        for t in 0..8usize {
            let probes = &probes;
            let queries = &queries;
            let expected = &expected;
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                // Each thread starts at a different offset so the eight
                // sessions are always querying different timestamps.
                for k in 0..probes.len() {
                    let p = probes[(k + t * 7) % probes.len()];
                    for (qi, q) in queries.iter().enumerate() {
                        let got = client.query(q, Some(p.micros())).unwrap().to_xml();
                        let want = &expected[((k + t * 7) % probes.len()) * queries.len() + qi];
                        assert_eq!(&got, want, "thread {t} probe {p} query {qi} diverged");
                    }
                }
            });
        }
    });
    server.shutdown().unwrap();
}

// -------------------------------------------------- session lifecycle

/// A dropped connection releases everything the session held: explicit
/// `PIN`s and the snapshot pin inside a half-read query cursor. Vacuum's
/// horizon, fenced while the pins lived, advances once they are gone.
#[test]
fn disconnect_mid_stream_releases_pins() {
    let db = Arc::new(Database::in_memory());
    for i in 1..=5u64 {
        db.put("d", &format!("<a><v>{i}</v></a>"), ts(i)).unwrap();
    }
    let server = start(Arc::clone(&db));
    let baseline = db.store().snapshots().active();

    let mut raw = Raw::connect(server.addr());
    raw.send_line(format!(r#"{{"cmd":"PIN","at":{}}}"#, ts(1).micros()).as_bytes());
    assert_eq!(raw.recv().get("pin").and_then(Json::as_u64), Some(1));
    // While the pin lives, vacuum is fenced at ts(1): nothing to purge.
    let fenced = db.vacuum("d", ts(5)).unwrap().unwrap();
    assert_eq!(fenced.purged_versions, 0, "pin failed to fence vacuum");
    // Start a query and walk away after the first row: the cursor (and
    // its own pin) is abandoned mid-stream.
    raw.send_line(br#"{"cmd":"QUERY","q":"SELECT R FROM doc(\"d\")[EVERY]//a R"}"#);
    let first = raw.recv();
    assert!(first.get("row").is_some(), "{first}");
    drop(raw); // no UNPIN, no drain of the stream — just gone

    wait_until("session teardown to release pins", || db.store().snapshots().active() == baseline);
    wait_until("active_sessions gauge to return to 0", || {
        db.metrics().snapshot().gauge("server.active_sessions") == Some(0)
    });
    // The fence is gone: everything before the version valid at ts(5)
    // (v1..v3; v4 is the one valid at the horizon) is now purgeable.
    let purged = db.vacuum("d", ts(5)).unwrap().unwrap();
    assert_eq!(purged.purged_versions, 3, "vacuum horizon failed to advance");
    server.shutdown().unwrap();
}

/// A connection that dies mid-line (no terminator, no clean close) must
/// not wedge the accept loop or leak a session.
#[test]
fn killed_connection_never_wedges_the_accept_loop() {
    let db = Arc::new(Database::in_memory());
    db.put("d", "<a>x</a>", ts(1)).unwrap();
    let server = start(Arc::clone(&db));

    for _ in 0..3 {
        let mut raw = Raw::connect(server.addr());
        raw.send(br#"{"cmd":"QUERY","q":"SELECT"#); // half a request
        drop(raw); // RST/EOF with the line unterminated
    }
    // The server must still accept and serve promptly.
    let mut client = Client::connect(server.addr()).unwrap();
    client.ping().unwrap();
    assert_eq!(client.query(r#"SELECT R FROM doc("d")//a R"#, None).unwrap().rows.len(), 1);
    wait_until("dead sessions to be reaped", || {
        db.metrics().snapshot().gauge("server.active_sessions") == Some(1)
    });
    server.shutdown().unwrap();
}

/// Beyond `max_conns` live sessions, a new connection gets one structured
/// `busy` error — and a slot freeing up readmits new clients.
#[test]
fn busy_gate_refuses_and_recovers() {
    let db = Arc::new(Database::in_memory());
    let cfg = ServerConfig { max_conns: 1, ..Default::default() };
    let server = Server::start(Arc::clone(&db), cfg).unwrap();

    let mut first = Client::connect(server.addr()).unwrap();
    first.ping().unwrap(); // session is live, the one slot is taken
    let mut refused = Raw::connect(server.addr());
    assert_eq!(refused.error_code(), "busy");
    drop(first);
    wait_until("the slot to free", || server.active_sessions() == 0);
    // The accept loop re-checks occupancy per connection: readmitted.
    wait_until("readmission after the slot freed", || {
        Client::connect(server.addr())
            .and_then(|mut c| {
                c.ping().map_err(|e| match e {
                    temporal_xml::client::ClientError::Io(io) => io,
                    other => std::io::Error::other(other.to_string()),
                })
            })
            .is_ok()
    });
    server.shutdown().unwrap();
}

// ------------------------------------------------ malformed input

/// Every malformed request gets a structured, code-bearing error response
/// on the same connection — which stays usable. Nothing drops the session
/// but EOF and `SHUTDOWN`.
#[test]
fn malformed_input_gets_structured_errors_not_disconnects() {
    let db = Arc::new(Database::in_memory());
    db.put("d", "<a>x</a>", ts(1)).unwrap();
    let cfg = ServerConfig { max_request_bytes: 256, ..Default::default() };
    let server = Server::start(Arc::clone(&db), cfg).unwrap();
    let mut raw = Raw::connect(server.addr());

    // Not JSON at all.
    raw.send(b"hello there\n");
    assert_eq!(raw.error_code(), "parse");
    // Truncated mid-value: distinguished from garbage.
    raw.send(b"{\"cmd\":\"PING\"\n");
    assert_eq!(raw.error_code(), "truncated");
    // Invalid UTF-8.
    raw.send(b"\xff\xfe{\"cmd\":\"PING\"}\n");
    assert_eq!(raw.error_code(), "utf8");
    // Oversized line: refused without buffering, connection stays in sync.
    let mut big = vec![b'x'; 4096];
    big.push(b'\n');
    raw.send(&big);
    assert_eq!(raw.error_code(), "too_large");
    // Wrong shapes and types.
    raw.send(b"[1,2,3]\n");
    assert_eq!(raw.error_code(), "bad_request");
    raw.send(b"{\"cmd\":5}\n");
    assert_eq!(raw.error_code(), "bad_request");
    raw.send(b"{\"cmd\":\"PUT\",\"doc\":\"d\"}\n");
    assert_eq!(raw.error_code(), "bad_request"); // missing xml
    raw.send(b"{\"cmd\":\"QUERY\",\"q\":\"SELECT nonsense !!\"}\n");
    assert_eq!(raw.error_code(), "query");
    raw.send_line(br#"{"cmd":"PUT","doc":"d","xml":"<unclosed>"}"#);
    assert_eq!(raw.error_code(), "query"); // XML parse failure
    raw.send(b"{\"cmd\":\"UNPIN\",\"pin\":99}\n");
    assert_eq!(raw.error_code(), "bad_request");

    // After all that abuse, the session still answers.
    raw.send(b"{\"cmd\":\"PING\"}\n");
    assert_eq!(raw.recv().get("ok").and_then(Json::as_bool), Some(true));
    server.shutdown().unwrap();
}

// ------------------------------------------------- graceful drain

/// `shutdown` stops accepting, finishes the in-flight work, releases all
/// session pins and checkpoints the WAL closed: a reopen replays nothing
/// and fsck comes back clean with zero leaked pins.
#[test]
fn graceful_shutdown_leaves_store_clean_with_zero_pins() {
    let dir = std::env::temp_dir().join(format!("txdb-server-drain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Arc::new(DbOptions::at(&dir).open().unwrap());
    let server = start(Arc::clone(&db));

    let mut client = Client::connect(server.addr()).unwrap();
    for i in 1..=4u64 {
        let r = client.put("d", &format!("<a><v>{i}</v></a>"), Some(ts(i).micros())).unwrap();
        assert!(r.changed);
    }
    client.pin(ts(2).micros()).unwrap(); // deliberately never unpinned
    assert_eq!(db.store().snapshots().active(), 1);

    let report = server.shutdown().unwrap();
    assert_eq!(report.sessions_drained, 1, "the pinned session was live at drain");
    assert_eq!(db.store().snapshots().active(), 0, "drain leaked a snapshot pin");
    let fsck = db.store().fsck();
    assert!(fsck.is_clean(), "{fsck}");
    assert_eq!(fsck.wal_records, 0, "drain checkpoint failed to close the WAL: {fsck}");
    drop(client);
    drop(db);
    // Reopen: nothing to recover.
    let db = DbOptions::at(&dir).open().unwrap();
    assert_eq!(db.recovery_report().replayed, 0);
    assert_eq!(db.query(r#"SELECT R FROM doc("d")//a R"#).at(ts(10)).run().unwrap().len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

// --------------------------------------------------- observability

/// A traced wire QUERY returns a span tree whose root duration equals —
/// to the microsecond — the `server.cmd.query_us` histogram observation
/// for that request, and every child span fits inside its parent.
#[test]
fn traced_query_span_tree_matches_the_metrics_observation() {
    let db = Arc::new(Database::in_memory());
    for i in 1..=8u64 {
        db.put("d", &format!("<a><v>{i}</v></a>"), ts(i)).unwrap();
    }
    let server = start(Arc::clone(&db));
    let mut client = Client::connect(server.addr()).unwrap();
    let mut rows = 0u64;
    let (_explain, trace, _done) = client
        .query_stream_traced(r#"SELECT R FROM doc("d")[EVERY]//a R"#, None, true, |_| rows += 1)
        .unwrap();
    assert_eq!(rows, 8);
    let trace = trace.expect("traced request must carry a trace in its done frame");
    let fields = trace.get("fields").expect("trace-level fields");
    assert_eq!(fields.get("cmd").and_then(Json::as_str), Some("query"));
    assert!(fields.get("session").and_then(Json::as_u64).is_some());
    let spans = trace.get("spans").and_then(Json::as_arr).expect("spans");
    assert_eq!(spans.len(), 1, "one root span per request: {trace}");
    let root = &spans[0];
    assert_eq!(root.get("name").and_then(Json::as_str), Some("server.cmd.query_us"));
    let root_us = root.get("us").and_then(Json::as_u64).unwrap();
    // Exactly one query ran, and histogram sums are exact (only the
    // percentiles are bucketed): the root span and the observation the
    // request recorded must agree exactly.
    let h = db.metrics().snapshot().histogram("server.cmd.query_us").unwrap();
    assert_eq!(h.count, 1);
    assert_eq!(h.sum, root_us, "trace root disagrees with server.cmd.query_us");
    // Children nest: no span outlasts its parent, anywhere in the tree.
    fn check(span: &Json) -> usize {
        let us = span.get("us").and_then(Json::as_u64).unwrap();
        let mut n = 1;
        for c in span.get("children").and_then(Json::as_arr).unwrap_or(&[]) {
            assert!(c.get("us").and_then(Json::as_u64).unwrap() <= us, "child outlasts parent");
            n += check(c);
        }
        n
    }
    let text = trace.to_string();
    assert!(check(root) >= 3, "expected plan/run/operator children: {trace}");
    assert!(text.contains("query.run_us"), "executor span missing: {trace}");
    assert!(text.contains("query.plan_us"), "planner span missing: {trace}");
    // The request landed in the trace ring too.
    let ring = client.traces(None).unwrap();
    let entries = ring.get("traces").and_then(Json::as_arr).unwrap();
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].get("cmd").and_then(Json::as_str), Some("query"));
    assert_eq!(entries[0].get("us").and_then(Json::as_u64), Some(root_us));
    server.shutdown().unwrap();
}

/// With the threshold at zero every query is slow: the log captures the
/// query text, session context, row/scan counts and the full
/// `EXPLAIN ANALYZE` tree, newest first.
#[test]
fn slow_query_log_captures_plan_and_context() {
    let db = Arc::new(Database::in_memory());
    for i in 1..=4u64 {
        db.put("d", &format!("<a><v>{i}</v></a>"), ts(i)).unwrap();
    }
    let cfg = ServerConfig { slow_us: Some(0), ..Default::default() };
    let server = Server::start(Arc::clone(&db), cfg).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let reply = client.query(r#"SELECT R FROM doc("d")[EVERY]//a R"#, None).unwrap();
    assert_eq!(reply.rows.len(), 4);
    let log = client.slowlog(None).unwrap();
    assert_eq!(log.get("slow_us").and_then(Json::as_u64), Some(0));
    let entries = log.get("entries").and_then(Json::as_arr).unwrap();
    assert_eq!(entries.len(), 1);
    let e = &entries[0];
    assert!(e.get("q").and_then(Json::as_str).unwrap().contains("SELECT"), "{e}");
    assert_eq!(e.get("rows").and_then(Json::as_u64), Some(4));
    assert!(e.get("rows_scanned").and_then(Json::as_u64).unwrap() >= 4);
    assert!(e.get("us").and_then(Json::as_u64).is_some());
    let explain = e.get("explain").and_then(Json::as_str).unwrap();
    assert!(explain.contains("scan"), "plan missing from the slow log: {explain:?}");
    // The query was not traced, so the entry carries no trace id.
    assert!(e.get("trace_id").is_none(), "{e}");
    server.shutdown().unwrap();
}

/// `METRICS` with the previous call's cursor reports the window between
/// the two calls as deltas; a stale or foreign cursor is refused.
#[test]
fn metrics_since_cursor_reports_window_deltas() {
    let db = Arc::new(Database::in_memory());
    db.put("d", "<a>x</a>", ts(1)).unwrap();
    let server = start(Arc::clone(&db));
    let mut client = Client::connect(server.addr()).unwrap();

    let first = client.metrics_since(None).unwrap();
    let cursor = first.get("cursor").and_then(Json::as_u64).expect("cursor");
    assert!(first.get("delta").is_none(), "no window without a cursor: {first}");
    assert!(first.get("metrics").is_some());

    client.query(r#"SELECT R FROM doc("d")//a R"#, None).unwrap();
    let second = client.metrics_since(Some(cursor)).unwrap();
    assert!(second.get("window_us").and_then(Json::as_u64).unwrap() > 0);
    let delta = second.get("delta").expect("delta with a cursor");
    let dh = delta
        .get("histograms")
        .and_then(|h| h.get("server.cmd.query_us"))
        .expect("query histogram moved this window");
    assert_eq!(dh.get("count").and_then(Json::as_u64), Some(1));
    // Cursors are single-use: replaying the consumed one is refused.
    assert!(client.metrics_since(Some(cursor)).is_err(), "stale cursor must be refused");
    server.shutdown().unwrap();
}

/// An idle session is timed out: it receives one structured
/// `idle_timeout` error, and its pins release like any disconnect.
#[test]
fn idle_session_times_out_and_releases_pins() {
    let db = Arc::new(Database::in_memory());
    db.put("d", "<a>x</a>", ts(1)).unwrap();
    let cfg = ServerConfig { idle_timeout: Some(Duration::from_millis(80)), ..Default::default() };
    let server = Server::start(Arc::clone(&db), cfg).unwrap();
    let baseline = db.store().snapshots().active();

    let mut raw = Raw::connect(server.addr());
    raw.send_line(format!(r#"{{"cmd":"PIN","at":{}}}"#, ts(1).micros()).as_bytes());
    assert_eq!(raw.recv().get("pin").and_then(Json::as_u64), Some(1));
    assert_eq!(db.store().snapshots().active(), baseline + 1);
    // Send nothing more: the server's read times out and closes us.
    assert_eq!(raw.error_code(), "idle_timeout");
    wait_until("idle teardown to release pins", || db.store().snapshots().active() == baseline);
    wait_until("active_sessions gauge to return to 0", || {
        db.metrics().snapshot().gauge("server.active_sessions") == Some(0)
    });
    assert!(db.metrics().snapshot().counter("server.idle_timeouts").unwrap() >= 1);
    server.shutdown().unwrap();
}

// ---------------------------------------------------- decoder fuzz

proptest! {
    /// The request decoder never panics, whatever line arrives.
    #[test]
    fn decode_never_panics(line in ".{0,120}") {
        let _ = decode(&line);
    }

    /// Neither does the frame reader, on arbitrary bytes with a tiny
    /// budget — every frame is one of the four variants, never a panic
    /// or a stuck loop.
    #[test]
    fn frame_reader_never_panics(bytes in prop::collection::vec(0u8..=255u8, 0..256)) {
        let mut r = std::io::BufReader::new(&bytes[..]);
        for _ in 0..64 {
            match read_frame(&mut r, 16) {
                Ok(Frame::Eof) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }

    /// Round-trip: a well-formed PUT built with the client's own encoder
    /// always decodes into the same fields.
    #[test]
    fn put_requests_round_trip(doc in "[a-z]{1,12}", xml in "<a>[ -~]{0,40}</a>", at in 0u64..1u64 << 50) {
        let line = Json::obj([
            Json::field("cmd", Json::str("PUT")),
            Json::field("doc", Json::str(&doc)),
            Json::field("xml", Json::str(&xml)),
            Json::field("at", Json::u64(at)),
        ]).to_string();
        match decode(&line).expect("well-formed PUT must decode") {
            (temporal_xml::server::proto::Request::Put { doc: d, xml: x, at: t }, false) => {
                prop_assert_eq!(d, doc);
                prop_assert_eq!(x, xml);
                prop_assert_eq!(t.map(|t| t.micros()), Some(at));
            }
            other => prop_assert!(false, "decoded to {:?}", other),
        }
    }
}
