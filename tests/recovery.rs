//! Crash-recovery and persistence of the full database (store + WAL +
//! index rebuild), end to end.

use temporal_xml::core::DbOptions;
use temporal_xml::index::fti::OccKind;
use temporal_xml::xml::pattern::{PatternNode, PatternTree};
use temporal_xml::{Timestamp, VersionId};

fn ts(n: u64) -> Timestamp {
    Timestamp::from_secs(1_000_000 + n)
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    // Keyed on pid *and* a per-process counter: pid alone collides when
    // two tests in the same process pick the same tag (or the same test
    // makes two dirs).
    static SEQ: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);
    let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("txdb-it-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(dir: &std::path::Path) -> DbOptions {
    DbOptions::at(dir)
}

#[test]
fn clean_reopen_preserves_everything() {
    let dir = tmpdir("clean");
    {
        let db = opts(&dir).open().unwrap();
        db.put("a", "<x><w>alpha</w></x>", ts(1)).unwrap();
        db.put("a", "<x><w>beta</w></x>", ts(2)).unwrap();
        db.put("b", "<y><w>gamma</w></y>", ts(3)).unwrap();
        db.delete("b", ts(4)).unwrap();
        db.checkpoint().unwrap();
    }
    let db = opts(&dir).open().unwrap();
    let report = db.recovery_report();
    assert_eq!(report.replayed, 0, "clean shutdown needs no replay");
    // Store state.
    let a = db.store().doc_id("a").unwrap().unwrap();
    assert_eq!(db.store().versions(a).unwrap().len(), 2);
    assert_eq!(
        temporal_xml::xml::to_string(&db.store().version_tree(a, VersionId(0)).unwrap()),
        "<x><w>alpha</w></x>"
    );
    let b = db.store().doc_id("b").unwrap().unwrap();
    assert!(db.store().is_deleted(b).unwrap());
    // FTI rebuilt.
    let fti = db.indexes().fti();
    assert_eq!(fti.lookup("beta", OccKind::Word).len(), 1);
    assert_eq!(fti.lookup("alpha", OccKind::Word).len(), 0);
    assert_eq!(fti.lookup_h("gamma", OccKind::Word).len(), 1);
    drop(fti);
    // Temporal scan works on the rebuilt index.
    let p = PatternTree::new(PatternNode::tag("w").word("alpha").project());
    assert_eq!(db.tpattern_scan(None, &p, ts(1)).unwrap().len(), 1);
    assert_eq!(db.tpattern_scan(None, &p, ts(2)).unwrap().len(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_after_checkpoint_replays_wal_tail() {
    let dir = tmpdir("crash");
    {
        let db = opts(&dir).open().unwrap();
        db.put("doc", "<d><v>1</v></d>", ts(1)).unwrap();
        db.checkpoint().unwrap();
        // These land only in the WAL; the process "crashes" before any
        // checkpoint (pages never flushed — the pool is no-steal).
        db.put("doc", "<d><v>2</v></d>", ts(2)).unwrap();
        db.put("doc", "<d><v>3</v></d>", ts(3)).unwrap();
        db.put("other", "<o>hello</o>", ts(4)).unwrap();
        db.store().buffer_stats(); // keep db alive to here
                                   // Drop without checkpoint = crash.
    }
    let db = opts(&dir).open().unwrap();
    let report = db.recovery_report();
    assert_eq!(report.replayed, 3);
    let doc = db.store().doc_id("doc").unwrap().unwrap();
    assert_eq!(db.store().versions(doc).unwrap().len(), 3);
    // Replay is deterministic: same XIDs, same deltas, reconstruction works.
    for (v, want) in [(0u32, "1"), (1, "2"), (2, "3")] {
        assert_eq!(
            temporal_xml::xml::to_string(&db.store().version_tree(doc, VersionId(v)).unwrap()),
            format!("<d><v>{want}</v></d>")
        );
    }
    // Index sees the recovered state.
    let p = PatternTree::new(PatternNode::tag("o").word("hello").project());
    assert_eq!(db.pattern_scan(None, &p).unwrap().len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn repeated_crash_recover_cycles_converge() {
    let dir = tmpdir("cycles");
    for round in 0..4u64 {
        let db = opts(&dir).open().unwrap();
        db.put("d", &format!("<a><n>{round}</n></a>"), ts(10 + round)).unwrap();
        if round % 2 == 0 {
            db.checkpoint().unwrap();
        }
        // else: crash with the put only in the WAL.
    }
    let db = opts(&dir).open().unwrap();
    let d = db.store().doc_id("d").unwrap().unwrap();
    assert_eq!(db.store().versions(d).unwrap().len(), 4);
    assert_eq!(
        temporal_xml::xml::to_string(&db.store().current_tree(d).unwrap()),
        "<a><n>3</n></a>"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshots_survive_reopen() {
    let dir = tmpdir("snap");
    let o = DbOptions::at(dir.clone()).snapshot_every(3);
    {
        let db = o.clone().open().unwrap();
        for i in 0..10u64 {
            db.put("d", &format!("<a><v>{i}</v></a>"), ts(i)).unwrap();
        }
        db.checkpoint().unwrap();
    }
    let db = o.open().unwrap();
    let d = db.store().doc_id("d").unwrap().unwrap();
    // Snapshot at v3 bounds reconstruction of v1 to ≤ 2 deltas.
    let (tree, applied) = db.store().version_tree_counted(d, VersionId(1)).unwrap();
    assert_eq!(temporal_xml::xml::to_string(&tree), "<a><v>1</v></a>");
    assert!(applied <= 2, "snapshot used after reopen: {applied}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn vacuum_is_wal_logged_and_survives_crash() {
    let dir = tmpdir("vacuum");
    let o = opts(&dir);
    {
        let db = o.clone().open().unwrap();
        for i in 1..=6u64 {
            db.put("d", &format!("<a><v>{i}</v></a>"), ts(i * 10)).unwrap();
        }
        db.checkpoint().unwrap();
        // Vacuum lands only in the WAL; crash before checkpoint.
        let stats = db.vacuum("d", ts(45)).unwrap().unwrap();
        assert!(stats.purged_versions > 0);
    }
    let db = o.open().unwrap();
    let report = db.recovery_report();
    assert_eq!(report.replayed, 1, "the vacuum op replays");
    let d = db.store().doc_id("d").unwrap().unwrap();
    // Purged prefix unreconstructable; retained tail intact.
    assert!(db.store().version_tree(d, VersionId(0)).is_err());
    assert_eq!(
        temporal_xml::xml::to_string(&db.store().current_tree(d).unwrap()),
        "<a><v>6</v></a>"
    );
    // The rebuilt FTI serves current and retained-history queries.
    let p = PatternTree::new(PatternNode::tag("v").word("6").project());
    assert_eq!(db.pattern_scan(None, &p).unwrap().len(), 1);
    let p4 = PatternTree::new(PatternNode::tag("v").word("4").project());
    assert_eq!(db.tpattern_scan(None, &p4, ts(41)).unwrap().len(), 1);
    // Queries before the vacuum horizon return nothing.
    let p1 = PatternTree::new(PatternNode::tag("v").word("1").project());
    assert!(db.tpattern_scan(None, &p1, ts(11)).unwrap().is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sealed_journal_replays_before_anything_else_on_open() {
    use temporal_xml::storage::repo::roots;
    use temporal_xml::storage::{journal, Pager, RealVfs, Vfs, PAGE_SIZE, PHYS_PAGE_SIZE};
    let dir = tmpdir("journal-sealed");
    {
        let db = opts(&dir).open().unwrap();
        db.put("a", "<x><w>alpha</w></x>", ts(1)).unwrap();
        db.put("a", "<x><w>beta</w></x>", ts(2)).unwrap();
        db.close().unwrap();
    }
    let data = dir.join("data.db");
    // Reconstruct the crash window between journal seal and home flush:
    // capture page 1's committed logical image into a sealed journal
    // stamped with the *next* generation, then tear the home copy.
    let bytes = std::fs::read(&data).unwrap();
    let image = &bytes[PHYS_PAGE_SIZE..PHYS_PAGE_SIZE + PAGE_SIZE];
    let generation = Pager::open(&data).unwrap().root(roots::CKPT_GEN).0;
    {
        let mut j = RealVfs.open(&journal::journal_path(&dir)).unwrap();
        journal::write_batch(j.as_mut(), generation + 1, &[(1, image)]).unwrap();
    }
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new().write(true).open(&data).unwrap();
        f.seek(SeekFrom::Start(PHYS_PAGE_SIZE as u64 + 777)).unwrap();
        f.write_all(&[0xAB; 64]).unwrap();
    }
    let db = opts(&dir).open().unwrap();
    let report = db.recovery_report();
    assert!(report.journal_state.contains("sealed"), "state: {}", report.journal_state);
    assert_eq!(report.journal_replayed_pages, 1);
    assert!(!report.journal_fenced);
    assert!(report.salvage.is_none(), "replay must repair the tear: {:?}", report.salvage);
    let snap = db.metrics().snapshot();
    assert_eq!(snap.counter("recovery.journal_replays"), Some(1));
    // The torn page came back byte-exact: both versions reconstruct.
    let a = db.store().doc_id("a").unwrap().unwrap();
    assert_eq!(
        temporal_xml::xml::to_string(&db.store().version_tree(a, VersionId(0)).unwrap()),
        "<x><w>alpha</w></x>"
    );
    assert_eq!(
        temporal_xml::xml::to_string(&db.store().current_tree(a).unwrap()),
        "<x><w>beta</w></x>"
    );
    let r = db.store().fsck();
    assert!(r.is_clean(), "{r}");
    assert_eq!(r.journal, "absent", "replayed journal was retired");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_journal_is_never_replayed_and_auto_retired_on_open() {
    let dir = tmpdir("journal-stale");
    {
        let db = opts(&dir).open().unwrap();
        db.put("a", "<x><w>alpha</w></x>", ts(1)).unwrap();
        db.close().unwrap();
    }
    // A torn journal write (crash before the seal reached disk) leaves
    // unsealed residue. It must never be applied to the data file; open
    // retires it automatically and records a recovery event.
    let before = std::fs::read(dir.join("data.db")).unwrap();
    std::fs::write(dir.join("journal.db"), vec![0x5A; 1000]).unwrap();
    let db = opts(&dir).open().unwrap();
    let report = db.recovery_report();
    assert!(report.journal_state.contains("stale"), "state: {}", report.journal_state);
    assert_eq!(report.journal_replayed_pages, 0);
    assert!(report.journal_stale_retired, "open retires the residue");
    let snap = db.metrics().snapshot();
    assert_eq!(snap.counter("recovery.journal_replays"), Some(0), "registered but untouched");
    assert_eq!(snap.counter("recovery.journal_residue_retired"), Some(1));
    assert_eq!(std::fs::read(dir.join("data.db")).unwrap(), before, "data untouched");
    // The residue is already gone: fsck sees a clean, absent journal and
    // a manual retire is a no-op.
    let r = db.store().fsck();
    assert!(r.is_clean(), "{r}");
    assert_eq!(r.journal, "absent", "journal: {}", r.journal);
    assert!(!db.store().retire_journal().unwrap(), "nothing left to retire");
    drop(db);
    // A clean reopen reports no residue and does not bump the counter.
    let db = opts(&dir).open().unwrap();
    assert!(!db.recovery_report().journal_stale_retired);
    assert_eq!(db.metrics().snapshot().counter("recovery.journal_residue_retired"), Some(0));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn salvage_rebuilds_catalog_from_surviving_heap_pages() {
    use temporal_xml::storage::repo::roots;
    use temporal_xml::storage::{DocumentStore, Pager, PHYS_PAGE_SIZE};
    use temporal_xml::StoreOptions;
    let dir = tmpdir("salvage-cat");
    let sopts = StoreOptions { path: Some(dir.clone()), ..Default::default() };
    {
        let (store, _) = DocumentStore::open(sopts.clone()).unwrap();
        store.put("one", "<a><w>uno</w></a>", ts(1)).unwrap();
        store.put("two", "<b><w>dos</w></b>", ts(2)).unwrap();
        store.put("two", "<b><w>tres</w></b>", ts(3)).unwrap();
        store.checkpoint().unwrap();
    }
    // Destroy the doc-catalog btree root. The metadata records live in
    // the heap and identify themselves, so the catalog is rebuildable.
    let docs_root = Pager::open(&dir.join("data.db")).unwrap().root(roots::DOCS);
    assert!(!docs_root.is_null());
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new().write(true).open(dir.join("data.db")).unwrap();
        f.seek(SeekFrom::Start(docs_root.0 * PHYS_PAGE_SIZE as u64 + 40)).unwrap();
        f.write_all(&[0xFF; 8]).unwrap();
    }
    let (store, _) = DocumentStore::open(sopts.clone()).unwrap();
    let r = store.fsck();
    assert!(!r.is_clean(), "the smashed root must show up");
    assert!(r.salvageable_docs >= 2, "fsck counts rebuildable docs:\n{r}");
    // The name->id catalog is intact (doc_id resolves), but the id->meta
    // btree is smashed: anything touching metadata errors until salvage.
    let two_id = store.doc_id("two").unwrap().unwrap();
    assert!(store.versions(two_id).is_err(), "metadata unreachable before the rebuild");
    let rebuilt = store.salvage_rebuild_catalog().unwrap();
    assert!(rebuilt >= 2, "both documents salvaged, got {rebuilt}");
    // Readable again on the live handle...
    let one = store.doc_id("one").unwrap().unwrap();
    assert_eq!(
        temporal_xml::xml::to_string(&store.current_tree(one).unwrap()),
        "<a><w>uno</w></a>"
    );
    drop(store);
    // ...and durably: a fresh open finds the full catalog and chains.
    let (store, report) = DocumentStore::open(sopts).unwrap();
    assert!(report.salvage.is_none(), "{:?}", report.salvage);
    let two = store.doc_id("two").unwrap().unwrap();
    assert_eq!(store.versions(two).unwrap().len(), 2);
    assert_eq!(
        temporal_xml::xml::to_string(&store.current_tree(two).unwrap()),
        "<b><w>tres</w></b>"
    );
    // New writes pick up past the highest salvaged doc id.
    store.put("three", "<c><w>new</w></c>", ts(4)).unwrap();
    let three = store.doc_id("three").unwrap().unwrap();
    assert!(three != one && three != two, "doc-id allocator restored");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rejected_writes_never_poison_the_wal() {
    // Regression: a non-monotonic put used to be WAL-logged before
    // validation, wedging every subsequent open on replay.
    let dir = tmpdir("poison");
    let o = opts(&dir);
    {
        let db = o.clone().open().unwrap();
        db.put("d", "<a>1</a>", ts(100)).unwrap();
        // Rejected: in the past.
        assert!(db.put("d", "<a>2</a>", ts(50)).is_err());
        assert!(db.delete("d", ts(50)).is_err());
        // Crash without checkpoint.
    }
    let db = o.clone().open().unwrap();
    let report = db.recovery_report();
    assert_eq!(report.skipped, 0, "rejected ops were never logged");
    let d = db.store().doc_id("d").unwrap().unwrap();
    assert_eq!(db.store().versions(d).unwrap().len(), 1);
    // And valid writes still work afterwards.
    db.put("d", "<a>3</a>", ts(200)).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_skips_logically_invalid_records() {
    // Defense in depth: if an unappliable record IS in the log (e.g.
    // written by a buggy or newer client), recovery skips it instead of
    // refusing to open — and the skip is reported.
    let dir = tmpdir("skip");
    std::fs::create_dir_all(&dir).unwrap();
    let o = opts(&dir);
    {
        let db = o.clone().open().unwrap();
        db.put("d", "<a>1</a>", ts(100)).unwrap();
        db.checkpoint().unwrap();
    }
    // Craft a poisoned WAL record by hand: a put at an already-used time.
    {
        use temporal_xml::xml::codec::encode_tree;
        let tree = temporal_xml::xml::parse_document("<a>stale</a>").unwrap();
        let mut payload = vec![1u8]; // WAL_PUT
        let name = b"d";
        payload.extend_from_slice(&(name.len() as u32).to_le_bytes());
        payload.extend_from_slice(name);
        payload.extend_from_slice(&ts(100).micros().to_le_bytes()); // same ts → invalid
        payload.extend_from_slice(&encode_tree(&tree));
        let wal = temporal_xml::storage::wal::Wal::open(&dir.join("wal.log"), false).unwrap();
        wal.append(&payload).unwrap();
    }
    let db = o.open().unwrap();
    let report = db.recovery_report();
    assert_eq!(report.skipped, 1, "poisoned record skipped, not fatal");
    let d = db.store().doc_id("d").unwrap().unwrap();
    assert_eq!(db.store().versions(d).unwrap().len(), 1);
    assert_eq!(temporal_xml::xml::to_string(&db.store().current_tree(d).unwrap()), "<a>1</a>");
    std::fs::remove_dir_all(&dir).unwrap();
}
